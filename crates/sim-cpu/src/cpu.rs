//! A single guest CPU core.

use crate::cost::CostModel;
use crate::fasthash::FastMap;
use crate::trace::{TraceCache, TraceOp, TraceParams};
use sim_isa::{decode, Cond, Inst, Reg};
use sim_mem::{AddressSpace, Fault, Pkru};

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Carry (unsigned overflow / borrow).
    pub cf: bool,
    /// Signed overflow.
    pub of: bool,
}

impl Flags {
    fn pack(self) -> u64 {
        (self.zf as u64) | (self.sf as u64) << 1 | (self.cf as u64) << 2 | (self.of as u64) << 3
    }

    fn unpack(v: u64) -> Flags {
        Flags {
            zf: v & 1 != 0,
            sf: v & 2 != 0,
            cf: v & 4 != 0,
            of: v & 8 != 0,
        }
    }

    fn test(self, c: Cond) -> bool {
        match c {
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

/// What a [`Cpu::step`] produced beyond plain execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction retired normally.
    Executed,
    /// A `syscall`/`sysenter` was fetched at `site`. The CPU does **not**
    /// advance `rip` or touch registers — the kernel decides (execute, SUD
    /// SIGSYS, ptrace stop, ...).
    Syscall {
        /// Address of the first opcode byte.
        site: u64,
        /// True for `sysenter` (`0f 34`).
        sysenter: bool,
    },
    /// `hlt` executed (threads normally exit via `exit` syscalls; `hlt` is a
    /// hard stop used by bare tests).
    Hlt,
    /// `int3` breakpoint.
    Int3,
    /// A fetch or data access faulted; `rip` still points at the faulting
    /// instruction.
    Fault(Fault),
}

/// The result of one step: the event, the cycles consumed, and the decoded
/// instruction (when fetch succeeded) for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Outcome.
    pub event: StepEvent,
    /// Cycles consumed by this step.
    pub cycles: u64,
    /// The decoded instruction, if any.
    pub inst: Option<Inst>,
}

/// What [`Cpu::run_block`] produced: the exit event plus the block's
/// aggregate accounting, which matches a per-[`Cpu::step`] loop exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockExit {
    /// The event that ended the block ([`StepEvent::Executed`] when the
    /// budget ran out).
    pub event: StepEvent,
    /// Total cycles consumed by every step in the block.
    pub cycles: u64,
    /// Steps consumed (every step counts, including the final event step —
    /// the scheduler's slice accounting unit).
    pub steps: u64,
    /// `vsyscall` instructions executed within the block.
    pub vdso_calls: u64,
    /// Decoded instruction of the final step, if fetch succeeded.
    pub inst: Option<Inst>,
}

/// Which icache flush strategy a core uses at serialization points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IcacheMode {
    /// Generation-based revalidation against page content versions (the
    /// fast path).
    #[default]
    Revalidate,
    /// Drop every cached decode at every serialization point (the original
    /// engine's behavior, kept as the benchmarking baseline).
    SeedFlush,
}

/// One guest core: registers + flags + PKRU + a decoded-instruction cache.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg::index`].
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Arithmetic flags.
    pub flags: Flags,
    /// Protection-key rights register (thread-local, as on real hardware).
    pub pkru: Pkru,
    icache: FastMap<u64, ICacheEntry>,
    /// Page base → rips of cached decodes whose bytes touch that page.
    /// Store invalidation consults only the (at most three) pages a store
    /// can affect instead of scanning the whole icache. Entries may be
    /// stale (decode already evicted); they are pruned lazily.
    icache_index: FastMap<u64, Vec<u64>>,
    /// Serialization generation: bumped by [`Cpu::flush_icache`]. Cached
    /// decodes whose `fresh_gen` lags are revalidated against page content
    /// versions before reuse (identical memory decodes identically, so this
    /// is guest-invisible) instead of being unconditionally re-decoded.
    flush_gen: u64,
    /// Reproduce the original engine's flush behavior (drop everything at
    /// every serialization point) instead of generation-based revalidation.
    /// Guest-invisible either way; used for the benchmarking baseline.
    seed_flush: bool,
    /// `AddressSpace` write stamp at the last real [`Cpu::serialize`]:
    /// while it is unchanged, serialization points are coalesced away
    /// (nothing was written anywhere in the space, so every revalidation
    /// would trivially succeed). Reset by any unconditional flush.
    last_serialize_stamp: Option<(u64, u64)>,
    /// Trace cache (superblock promotion); `None` outside trace mode.
    trace: Option<Box<TraceCache>>,
    /// True while [`Cpu::exec_trace`] has moved the trace cache out of
    /// `self`; store invalidation then buffers into
    /// `pending_trace_unlinks` instead of unlinking directly.
    trace_replaying: bool,
    /// Set mid-replay (store into the replaying trace's pages, or any
    /// icache flush) to force a side exit at the next op boundary. A
    /// spurious side exit is always safe: cold execution is
    /// architecturally identical.
    trace_replay_break: bool,
    /// Page bases of the trace currently being replayed.
    replay_pages: Vec<u64>,
    /// Pages written while the trace cache was moved out; their traces
    /// are unlinked when the cache is put back.
    pending_trace_unlinks: Vec<u64>,
    /// Retired instruction count (for debugging and run limits).
    pub retired: u64,
}

/// One cached decode, revalidatable across serialization points.
#[derive(Debug, Clone, Copy)]
struct ICacheEntry {
    inst: Inst,
    len: u8,
    /// Usable without any checks while this equals [`Cpu::flush_gen`]
    /// (no serialization since decode — staleness is *required* then).
    fresh_gen: u64,
    /// [`AddressSpace::generation`] at decode time: mapping/protection
    /// changes force a real re-decode.
    mem_gen: u64,
    /// `(page base, content version)` for each page the decode's bytes
    /// touch (at most two: decodes are ≤ 10 bytes).
    pages: [(u64, u64); 2],
    npages: u8,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A zeroed core.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 16],
            rip: 0,
            flags: Flags::default(),
            pkru: Pkru::ALL_ACCESS,
            icache: FastMap::default(),
            icache_index: FastMap::default(),
            flush_gen: 0,
            seed_flush: false,
            last_serialize_stamp: None,
            trace: None,
            trace_replaying: false,
            trace_replay_break: false,
            replay_pages: Vec::new(),
            pending_trace_unlinks: Vec::new(),
            retired: 0,
        }
    }

    /// Register read.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Register write.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Flushes the decoded-instruction cache (serializing event: `cpuid`,
    /// `fence`, or any kernel entry on this core).
    ///
    /// Architecturally this makes every store — own or cross-core — visible
    /// to subsequent fetches. The fast implementation bumps a generation and
    /// revalidates entries lazily against page content versions (unchanged
    /// bytes decode identically, so reuse is exact); seed mode drops the
    /// cache wholesale like the original engine.
    pub fn flush_icache(&mut self) {
        sim_obs::icache_flush();
        // An unconditional flush must not be coalesced with a later
        // serialize call, and invalidates any trace being recorded (its
        // ops were captured under the pre-flush generation).
        self.last_serialize_stamp = None;
        if let Some(tc) = &mut self.trace {
            tc.abort_recording();
        }
        // A replay in flight must side-exit: its ops were decoded under
        // the pre-flush generation (see `exec_trace`). Harmless outside
        // replay — the flag is reset when a replay starts.
        self.trace_replay_break = true;
        if self.seed_flush {
            self.icache.clear();
            self.icache_index.clear();
        } else {
            self.flush_gen += 1;
        }
    }

    /// A serialization point against `mem` (kernel entry, `cpuid`,
    /// `fence`, signal delivery): architecturally equivalent to
    /// [`Cpu::flush_icache`], but coalesced when `mem`'s write stamp is
    /// unchanged since the last real flush. No write, mapping, protection,
    /// or pkey change anywhere in the space means every cached decode (and
    /// trace) would revalidate trivially, so skipping the generation bump
    /// is guest-invisible — and the `icache_flushes` counter then reflects
    /// true serialization points instead of one flush per kernel entry.
    #[inline]
    pub fn serialize(&mut self, mem: &AddressSpace) {
        if self.seed_flush {
            self.flush_icache();
            return;
        }
        let stamp = mem.write_stamp();
        if self.last_serialize_stamp == Some(stamp) {
            sim_obs::icache_flush_coalesced();
            return;
        }
        self.flush_icache();
        self.last_serialize_stamp = Some(stamp);
    }

    /// Selects the icache flush strategy: [`IcacheMode::Revalidate`] is the
    /// generation-based fast path; [`IcacheMode::SeedFlush`] reproduces the
    /// original engine's flush-everything behavior (the benchmarking
    /// baseline). Guest-invisible either way.
    pub fn set_icache_mode(&mut self, mode: IcacheMode) {
        self.seed_flush = mode == IcacheMode::SeedFlush;
    }

    /// The currently selected icache flush strategy.
    pub fn icache_mode(&self) -> IcacheMode {
        if self.seed_flush {
            IcacheMode::SeedFlush
        } else {
            IcacheMode::Revalidate
        }
    }

    /// Enables or disables trace mode (superblock promotion). Enabling
    /// with an existing cache only updates the knobs — formed traces and
    /// heat survive across slices; disabling drops the cache.
    pub fn set_trace_mode(&mut self, params: Option<TraceParams>) {
        match (params, &mut self.trace) {
            (Some(p), Some(tc)) => tc.params = p,
            (Some(p), None) => self.trace = Some(Box::new(TraceCache::new(p))),
            (None, Some(_)) => self.trace = None,
            (None, None) => {}
        }
    }

    /// Number of decoded entries currently cached (observability for P5
    /// experiments).
    pub fn icache_len(&self) -> usize {
        self.icache.len()
    }

    /// Per-trace occupancy rows (empty outside trace mode) — see
    /// [`TraceCache::stats`].
    pub fn trace_stats(&self) -> Vec<crate::trace::TraceStat> {
        self.trace.as_deref().map(TraceCache::stats).unwrap_or_default()
    }

    /// Drops every host-side acceleration structure — decoded-instruction
    /// cache, its page index, serialize-coalescing stamp, and the trace
    /// cache pool (trace mode itself stays enabled with the same knobs).
    /// Architecturally invisible: neither the icache nor the trace cache
    /// participates in cycle accounting, so a core restored from a
    /// checkpoint re-decodes from cold with an identical guest-visible
    /// stream. Used by record/replay checkpoint restore, where cloned
    /// cache entries would otherwise carry stale cross-space page-version
    /// stamps.
    pub fn reset_caches(&mut self) {
        self.icache = FastMap::default();
        self.icache_index = FastMap::default();
        self.last_serialize_stamp = None;
        self.trace_replaying = false;
        self.trace_replay_break = false;
        self.replay_pages.clear();
        self.pending_trace_unlinks.clear();
        if let Some(tc) = self.trace.as_deref() {
            let params = tc.params;
            self.trace = Some(Box::new(TraceCache::new(params)));
        }
    }

    /// Applies the x86-64 syscall-entry register clobbers: the kernel leaves
    /// the return address in `rcx` and saved flags in `r11` — which is why
    /// K23's trampoline may reuse them without saving (paper §6.2.1).
    pub fn apply_syscall_clobbers(&mut self, return_rip: u64) {
        self.set(Reg::Rcx, return_rip);
        self.set(Reg::R11, self.flags.pack());
    }

    /// Restores flags from the packed `r11` form (used by sigreturn paths).
    pub fn flags_from_packed(&mut self, v: u64) {
        self.flags = Flags::unpack(v);
    }

    /// Packs current flags (for signal frames).
    pub fn packed_flags(&self) -> u64 {
        self.flags.pack()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr & !(sim_mem::PAGE_SIZE - 1)
    }

    /// Invalidates any cached decode whose bytes overlap `[addr, addr+len)`.
    ///
    /// Decodes are at most 10 bytes, so only rips in `(addr-9 ..
    /// addr+len)` can overlap — and those live in at most a handful of
    /// pages, found through `icache_index` rather than a full-cache scan.
    /// Cross-page decodes are registered under every page they touch, so a
    /// store into either page finds them.
    fn invalidate_icache_range(&mut self, addr: u64, len: u64) {
        let end = addr.saturating_add(len);
        // Traces are registered under every page their ops' bytes touch,
        // so unlinking only needs the pages the store itself hits (an op
        // straddling in from the previous page is indexed under this one
        // too). Page-granular is coarser than the icache's byte-overlap
        // rule below, which is safe: cold execution is architecturally
        // identical, an unlink only costs re-warming.
        if let Some(tc) = &mut self.trace {
            let mut page = Self::page_of(addr);
            let last = Self::page_of(end - 1); // len >= 1 always
            loop {
                tc.unlink_page(page);
                if page == last {
                    break;
                }
                page += sim_mem::PAGE_SIZE;
            }
        } else if self.trace_replaying {
            // The cache is moved out during replay (see `exec_trace`):
            // buffer the written pages for unlinking when it is put
            // back, and side-exit the replay only if the store hits the
            // replaying trace's own pages — matching the immediate
            // unlink's effect on the `valid` flag the old per-op check
            // read.
            let mut page = Self::page_of(addr);
            let last = Self::page_of(end - 1); // len >= 1 always
            loop {
                if !self.pending_trace_unlinks.contains(&page) {
                    self.pending_trace_unlinks.push(page);
                }
                if self.replay_pages.contains(&page) {
                    self.trace_replay_break = true;
                }
                if page == last {
                    break;
                }
                page += sim_mem::PAGE_SIZE;
            }
        }
        if self.icache.is_empty() {
            return;
        }
        let first = Self::page_of(addr.saturating_sub(9));
        let last = Self::page_of(end - 1); // len >= 1 always
        let Cpu {
            icache,
            icache_index,
            ..
        } = self;
        let mut removed = 0u64;
        let mut page = first;
        loop {
            if let Some(rips) = icache_index.get_mut(&page) {
                rips.retain(|&rip| match icache.get(&rip) {
                    Some(e) => {
                        if rip < end && rip.wrapping_add(e.len as u64) > addr {
                            icache.remove(&rip);
                            removed += 1;
                            false
                        } else {
                            true
                        }
                    }
                    None => false, // stale entry: decode already evicted
                });
                if rips.is_empty() {
                    icache_index.remove(&page);
                }
            }
            if page == last {
                break;
            }
            page += sim_mem::PAGE_SIZE;
        }
        if removed > 0 {
            sim_obs::icache_invalidate(addr, removed);
        }
    }

    fn fetch_decode(&mut self, mem: &mut AddressSpace) -> Result<(Inst, usize), StepEvent> {
        if let Some(e) = self.icache.get_mut(&self.rip) {
            if e.fresh_gen == self.flush_gen {
                sim_obs::icache_fresh_hit();
                return Ok((e.inst, e.len as usize));
            }
            // A serialization point passed since this decode. Reuse it only
            // if the underlying bytes provably haven't changed: same
            // mapping/protection generation and same content version on
            // every touched page. Otherwise drop it and re-decode.
            let mut valid = mem.generation() == e.mem_gen;
            for &(page, ver) in &e.pages[..e.npages as usize] {
                valid = valid && mem.page_version(page) == Some(ver);
            }
            if valid {
                e.fresh_gen = self.flush_gen;
                sim_obs::icache_revalidate(self.rip);
                return Ok((e.inst, e.len as usize));
            }
            self.icache.remove(&self.rip); // index pruned lazily
        }
        let mut buf = [0u8; 10];
        let n = match mem.fetch(self.rip, &mut buf, self.pkru) {
            Ok(n) => n,
            Err(f) => return Err(StepEvent::Fault(f)),
        };
        match decode(&buf[..n]) {
            Ok((inst, len)) => {
                // Register the decode under every page its bytes touch so
                // page-indexed invalidation finds straddling decodes, and
                // record the pages' content versions for revalidation.
                let mut entry = ICacheEntry {
                    inst,
                    len: len as u8,
                    fresh_gen: self.flush_gen,
                    mem_gen: mem.generation(),
                    pages: [(0, 0); 2],
                    npages: 0,
                };
                let mut page = Self::page_of(self.rip);
                let last = Self::page_of(self.rip.saturating_add(len as u64 - 1));
                loop {
                    entry.pages[entry.npages as usize] =
                        (page, mem.page_version(page).unwrap_or(0));
                    entry.npages += 1;
                    let rips = self.icache_index.entry(page).or_default();
                    if !rips.contains(&self.rip) {
                        rips.push(self.rip);
                    }
                    if page == last {
                        break;
                    }
                    page += sim_mem::PAGE_SIZE;
                }
                self.icache.insert(self.rip, entry);
                sim_obs::icache_decode();
                Ok((inst, len))
            }
            Err(_) => Err(StepEvent::Fault(Fault {
                addr: self.rip,
                access: sim_mem::Access::Fetch,
                reason: sim_mem::FaultReason::Protection,
            })),
        }
    }

    fn push(&mut self, mem: &mut AddressSpace, v: u64) -> Result<(), Fault> {
        let rsp = self.get(Reg::Rsp).wrapping_sub(8);
        mem.write_u64(rsp, v, self.pkru)?;
        self.set(Reg::Rsp, rsp);
        Ok(())
    }

    fn pop(&mut self, mem: &mut AddressSpace) -> Result<u64, Fault> {
        let rsp = self.get(Reg::Rsp);
        let v = mem.read_u64(rsp, self.pkru)?;
        self.set(Reg::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    fn flags_add(&mut self, a: u64, b: u64) -> u64 {
        let (res, cf) = a.overflowing_add(b);
        let of = ((a ^ res) & (b ^ res)) >> 63 != 0;
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf,
            of,
        };
        res
    }

    fn flags_sub(&mut self, a: u64, b: u64) -> u64 {
        let (res, cf) = a.overflowing_sub(b);
        let of = ((a ^ b) & (a ^ res)) >> 63 != 0;
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf,
            of,
        };
        res
    }

    fn flags_logic(&mut self, res: u64) -> u64 {
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: false,
            of: false,
        };
        res
    }

    /// Executes one instruction.
    ///
    /// `clock` is the current global cycle counter (consumed by the
    /// `vsyscall` fast time path). Kernel-entering instructions are *not*
    /// executed — they surface as [`StepEvent::Syscall`] with state
    /// untouched, and the kernel performs the architectural effects.
    pub fn step(&mut self, mem: &mut AddressSpace, clock: u64, cost: &CostModel) -> Step {
        let (inst, len) = match self.fetch_decode(mem) {
            Ok(x) => x,
            Err(event) => {
                return Step {
                    event,
                    cycles: cost.alu,
                    inst: None,
                }
            }
        };
        self.exec(inst, len, mem, clock, cost)
    }

    /// Executes an already-decoded instruction — the post-fetch half of
    /// [`Cpu::step`]. Trace replay feeds recorded decodes straight in,
    /// skipping the fetch and icache lookup entirely; every architectural
    /// effect (including `retired` and `rip`) is identical to a full step.
    #[inline]
    fn exec(
        &mut self,
        inst: Inst,
        len: usize,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
    ) -> Step {
        let cycles = cost.inst_cost(&inst);
        let next = self.rip.wrapping_add(len as u64);

        macro_rules! fault {
            ($f:expr) => {
                return Step {
                    event: StepEvent::Fault($f),
                    cycles,
                    inst: Some(inst),
                }
            };
        }

        match inst {
            Inst::Syscall | Inst::Sysenter => {
                return Step {
                    event: StepEvent::Syscall {
                        site: self.rip,
                        sysenter: matches!(inst, Inst::Sysenter),
                    },
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Hlt => {
                return Step {
                    event: StepEvent::Hlt,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Int3 => {
                self.rip = next;
                self.retired += 1;
                return Step {
                    event: StepEvent::Int3,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Nop => {
                // Batch-consume nop runs (the trampoline sled): zero-cost
                // single-byte nops with no architectural effect, so skipping
                // the whole run in one step is semantically identical and
                // keeps sled traversal cheap for the host.
                let mut end = next;
                let mut buf = [0u8; 64];
                #[allow(clippy::while_let_loop)] // labeled break from the inner scan
                'scan: loop {
                    let n = match mem.fetch(end, &mut buf, self.pkru) {
                        Ok(n) => n,
                        Err(_) => break,
                    };
                    for &b in &buf[..n] {
                        if b != 0x90 {
                            break 'scan;
                        }
                        end += 1;
                        self.retired += 1;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                self.rip = end;
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Cpuid | Inst::Fence => self.serialize(mem),
            Inst::Vsyscall => self.set(Reg::Rax, clock),
            Inst::Rdpkru => self.set(Reg::Rax, self.pkru.0 as u64),
            Inst::Wrpkru => self.pkru = Pkru(self.get(Reg::Rax) as u32),
            Inst::Push(r) => {
                if let Err(f) = self.push(mem, self.get(r)) {
                    fault!(f);
                }
            }
            Inst::Pop(r) => match self.pop(mem) {
                Ok(v) => self.set(r, v),
                Err(f) => fault!(f),
            },
            Inst::MovImm(r, v) => self.set(r, v),
            Inst::MovReg(d, s) => self.set(d, self.get(s)),
            Inst::Load(d, b, off) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                match mem.read_u64(addr, self.pkru) {
                    Ok(v) => self.set(d, v),
                    Err(f) => fault!(f),
                }
            }
            Inst::Store(b, off, s) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                if let Err(f) = mem.write_u64(addr, self.get(s), self.pkru) {
                    fault!(f);
                }
                self.invalidate_icache_range(addr, 8);
            }
            Inst::LoadByte(d, b, off) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                match mem.read_u8(addr, self.pkru) {
                    Ok(v) => self.set(d, v as u64),
                    Err(f) => fault!(f),
                }
            }
            Inst::StoreByte(b, off, s) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                if let Err(f) = mem.write_u8(addr, self.get(s) as u8, self.pkru) {
                    fault!(f);
                }
                self.invalidate_icache_range(addr, 1);
            }
            Inst::Lea(d, off) => self.set(d, next.wrapping_add(off as i64 as u64)),
            Inst::AddReg(d, s) => {
                let v = self.flags_add(self.get(d), self.get(s));
                self.set(d, v);
            }
            Inst::SubReg(d, s) => {
                let v = self.flags_sub(self.get(d), self.get(s));
                self.set(d, v);
            }
            Inst::AndReg(d, s) => {
                let v = self.flags_logic(self.get(d) & self.get(s));
                self.set(d, v);
            }
            Inst::OrReg(d, s) => {
                let v = self.flags_logic(self.get(d) | self.get(s));
                self.set(d, v);
            }
            Inst::XorReg(d, s) => {
                let v = self.flags_logic(self.get(d) ^ self.get(s));
                self.set(d, v);
            }
            Inst::CmpReg(d, s) => {
                self.flags_sub(self.get(d), self.get(s));
            }
            Inst::TestReg(d, s) => {
                self.flags_logic(self.get(d) & self.get(s));
            }
            Inst::ImulReg(d, s) => {
                let v = self.get(d).wrapping_mul(self.get(s));
                self.flags_logic(v);
                self.set(d, v);
            }
            Inst::AddImm(r, i) => {
                let v = self.flags_add(self.get(r), i as i64 as u64);
                self.set(r, v);
            }
            Inst::SubImm(r, i) => {
                let v = self.flags_sub(self.get(r), i as i64 as u64);
                self.set(r, v);
            }
            Inst::AndImm(r, i) => {
                let v = self.flags_logic(self.get(r) & (i as i64 as u64));
                self.set(r, v);
            }
            Inst::OrImm(r, i) => {
                let v = self.flags_logic(self.get(r) | (i as i64 as u64));
                self.set(r, v);
            }
            Inst::XorImm(r, i) => {
                let v = self.flags_logic(self.get(r) ^ (i as i64 as u64));
                self.set(r, v);
            }
            Inst::CmpImm(r, i) => {
                self.flags_sub(self.get(r), i as i64 as u64);
            }
            Inst::ShlImm(r, i) => {
                let v = self.flags_logic(self.get(r) << (i & 63));
                self.set(r, v);
            }
            Inst::ShrImm(r, i) => {
                let v = self.flags_logic(self.get(r) >> (i & 63));
                self.set(r, v);
            }
            Inst::ShlCl(r) => {
                let c = self.get(Reg::Rcx) & 63;
                let v = self.flags_logic(self.get(r) << c);
                self.set(r, v);
            }
            Inst::ShrCl(r) => {
                let c = self.get(Reg::Rcx) & 63;
                let v = self.flags_logic(self.get(r) >> c);
                self.set(r, v);
            }
            Inst::BtMem(b, i) => {
                let idx = self.get(i);
                let addr = self.get(b).wrapping_add(idx / 8);
                match mem.read_u8(addr, self.pkru) {
                    Ok(byte) => {
                        // Only CF is affected, as on x86.
                        self.flags.cf = byte & (1 << (idx % 8)) != 0;
                    }
                    Err(f) => fault!(f),
                }
            }
            Inst::Jmp(rel) => {
                self.rip = next.wrapping_add(rel as i64 as u64);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Call(rel) => {
                if let Err(f) = self.push(mem, next) {
                    fault!(f);
                }
                self.rip = next.wrapping_add(rel as i64 as u64);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Jcc(c, rel) => {
                self.rip = if self.flags.test(c) {
                    next.wrapping_add(rel as i64 as u64)
                } else {
                    next
                };
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::CallReg(r) => {
                let target = self.get(r);
                if let Err(f) = self.push(mem, next) {
                    fault!(f);
                }
                self.rip = target;
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::JmpReg(r) => {
                self.rip = self.get(r);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Ret => match self.pop(mem) {
                Ok(v) => {
                    self.rip = v;
                    self.retired += 1;
                    return Step {
                        event: StepEvent::Executed,
                        cycles,
                        inst: Some(inst),
                    };
                }
                Err(f) => fault!(f),
            },
        }

        self.rip = next;
        self.retired += 1;
        Step {
            event: StepEvent::Executed,
            cycles,
            inst: Some(inst),
        }
    }

    /// Runs up to `budget` steps without returning to the scheduler,
    /// stopping early at the first event that needs the kernel (syscall,
    /// fault, `hlt`, `int3`).
    ///
    /// Semantically this is exactly a [`Cpu::step`] loop: each step `i`
    /// observes the clock `clock + cycles-of-steps-0..i`, mirroring a
    /// caller that charges the global clock after every step. `on_step` is
    /// invoked after each step with the pre-step `rip` and the [`Step`]
    /// (pass a no-op closure for the fast path — it compiles away; pass a
    /// recording closure to capture an instruction-level trace).
    pub fn run_block(
        &mut self,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
        budget: u64,
        on_step: impl FnMut(u64, &Step),
    ) -> BlockExit {
        self.run_block_hooked(mem, clock, cost, budget, on_step, |_, _, _, _| {
            HookAction::Pass
        })
    }

    /// [`Cpu::run_block`] with a direct-path syscall hook: when trace
    /// replay hits a `syscall` op, `syscall_fast(cpu, mem, site, clock)`
    /// may service it in place (returning [`HookAction::Handled`]) so
    /// the replay — and a self-looping trace — continues without a block
    /// exit and dispatcher round trip per syscall. The hook must leave
    /// the architectural state exactly as a block exit + kernel entry +
    /// re-entry would have. Only consulted from warm trace replay; cold
    /// execution surfaces every syscall as a block exit.
    pub fn run_block_hooked(
        &mut self,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
        budget: u64,
        mut on_step: impl FnMut(u64, &Step),
        syscall_fast: impl FnMut(&mut Cpu, &mut AddressSpace, u64, u64) -> HookAction,
    ) -> BlockExit {
        if self.trace.is_some() {
            return self.run_block_traced(mem, clock, cost, budget, on_step, syscall_fast);
        }
        let mut cycles = 0u64;
        let mut steps = 0u64;
        let mut vdso_calls = 0u64;
        let mut inst = None;
        let obs = sim_obs::enabled();
        while steps < budget {
            if obs {
                sim_obs::set_clock(clock + cycles);
            }
            let rip_before = self.rip;
            let s = self.step(mem, clock + cycles, cost);
            steps += 1;
            cycles += s.cycles;
            inst = s.inst;
            on_step(rip_before, &s);
            if obs {
                // Post-step clock and RIP: identical to the stepwise
                // engine's per-step hook, so range-span streams match.
                sim_obs::span_step(clock + cycles, self.rip);
            }
            match s.event {
                StepEvent::Executed => {
                    if matches!(s.inst, Some(Inst::Vsyscall)) {
                        vdso_calls += 1;
                    }
                }
                event => {
                    sim_obs::block_len(steps);
                    return BlockExit {
                        event,
                        cycles,
                        steps,
                        vdso_calls,
                        inst,
                    };
                }
            }
        }
        sim_obs::block_len(steps);
        BlockExit {
            event: StepEvent::Executed,
            cycles,
            steps,
            vdso_calls,
            inst,
        }
    }

    /// True for instructions that end a basic block (control transfers);
    /// the traced dispatcher profiles and looks up traces only at block
    /// heads, i.e. after one of these or at `run_block` entry.
    #[inline]
    fn ends_block(inst: Option<Inst>) -> bool {
        matches!(
            inst,
            Some(
                Inst::Jmp(_)
                    | Inst::Call(_)
                    | Inst::Jcc(_, _)
                    | Inst::CallReg(_)
                    | Inst::JmpReg(_)
                    | Inst::Ret
            )
        )
    }

    /// Validates the trace entered at the current `rip`, if any: a single
    /// `fresh_gen` compare on the fast path, else one `mem_gen` compare
    /// plus a walk of the recorded page versions (restamp on success,
    /// unlink on failure). This replaces the block engine's per-entry
    /// page-version walk with a per-trace generation check.
    fn trace_validate(&mut self, mem: &mut AddressSpace) -> Option<u32> {
        let rip = self.rip;
        let flush_gen = self.flush_gen;
        let tc = self.trace.as_deref_mut()?;
        let idx = tc.lookup(rip)?;
        let t = tc.get_mut(idx);
        if t.fresh_gen == flush_gen {
            return Some(idx);
        }
        let mut valid = t.mem_gen == mem.generation();
        if valid {
            for &(page, ver) in &t.pages {
                if mem.page_version(page) != Some(ver) {
                    valid = false;
                    break;
                }
            }
        }
        if valid {
            t.fresh_gen = flush_gen;
            sim_obs::trace_revalidate();
            Some(idx)
        } else {
            tc.unlink_entry(rip);
            None
        }
    }

    /// Replays the ops of trace `idx`. Each op is a full architectural
    /// step (via [`Cpu::exec`]) with the identical per-step clock, trace
    /// hook, and span stream as cold execution — only the fetch and icache
    /// lookup are elided. Stops mid-trace on the step budget, on a kernel
    /// event, when control flow diverges from the recording, or when an
    /// own-core store (or a serializing op) invalidates the trace under
    /// our feet.
    ///
    /// The trace cache is moved out of `self` for the duration of the
    /// replay so the op stream is a plain slice walk with no per-op
    /// `Option<Box<..>>` re-derefs. Invalidation raised by replayed ops
    /// is routed through `trace_replay_break` (side-exit at the next op
    /// boundary) and `pending_trace_unlinks` (applied once the cache is
    /// put back) — see [`Cpu::invalidate_icache_range`] and
    /// [`Cpu::flush_icache`]. No recording is ever in progress here: the
    /// dispatcher closes any before entering a trace.
    ///
    /// A [`Cpu::Syscall`](StepEvent::Syscall) op consults `syscall_fast`
    /// (see [`Cpu::run_block_hooked`]): a handled syscall charges its
    /// cycles into the block and replay continues in place — a trace
    /// whose terminal syscall returns to its own entry loops without
    /// ever leaving this function.
    #[allow(clippy::too_many_arguments)]
    fn exec_trace(
        &mut self,
        idx: u32,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
        budget: u64,
        obs: bool,
        cycles: &mut u64,
        steps: &mut u64,
        vdso_calls: &mut u64,
        inst: &mut Option<Inst>,
        on_step: &mut impl FnMut(u64, &Step),
        syscall_fast: &mut impl FnMut(&mut Cpu, &mut AddressSpace, u64, u64) -> HookAction,
    ) -> TraceRun {
        let mut tc = self.trace.take().expect("exec_trace without trace cache");
        let t = tc.get(idx);
        self.replay_pages.clear();
        self.replay_pages.extend(t.pages.iter().map(|&(p, _)| p));
        self.trace_replay_break = false;
        self.trace_replaying = true;
        let entry = t.entry;
        let ops = &t.ops[..];
        let mut i = 0usize;
        // Batched accounting: the loop accumulates into locals (registers)
        // and writes the caller's counters back once at exit — the exact
        // retired-instruction boundary is preserved because every break
        // path flows through the write-back below.
        let mut linst = *inst;
        let mut lsteps = *steps;
        let mut lcycles = *cycles;
        let mut lvdso = *vdso_calls;
        let steps0 = lsteps;
        let mut wraps = 0u64;
        let run = 'replay: loop {
            if lsteps >= budget {
                break TraceRun::Budget;
            }
            let op = ops[i];
            if self.rip != op.rip {
                if obs {
                    sim_obs::trace_side_exit();
                }
                break TraceRun::SideExit;
            }
            if obs {
                sim_obs::set_clock(clock + lcycles);
            }
            let rip_before = self.rip;
            // Inlined fast paths: the hottest ops execute right here with
            // the same helpers, cost, and `retired`/`rip` effects as their
            // `exec` arms — no full-match dispatch, no event analysis.
            // Every op below is non-faulting, non-serializing, and
            // storeless (can't set `trace_replay_break`), always retires
            // with `StepEvent::Executed`, and is not `Vsyscall` — so the
            // slow path's event match, vdso count, and replay-break check
            // are statically settled. Cross-engine byte-identity tests
            // pin these arms to `exec`'s.
            'fast: {
                let next = op.rip.wrapping_add(op.len as u64);
                match op.inst {
                    Inst::MovImm(r, v) => {
                        self.set(r, v);
                        self.rip = next;
                    }
                    Inst::MovReg(d, sr) => {
                        self.set(d, self.get(sr));
                        self.rip = next;
                    }
                    Inst::Lea(d, off) => {
                        self.set(d, next.wrapping_add(off as i64 as u64));
                        self.rip = next;
                    }
                    Inst::AddImm(r, im) => {
                        let v = self.flags_add(self.get(r), im as i64 as u64);
                        self.set(r, v);
                        self.rip = next;
                    }
                    Inst::SubImm(r, im) => {
                        let v = self.flags_sub(self.get(r), im as i64 as u64);
                        self.set(r, v);
                        self.rip = next;
                    }
                    Inst::CmpImm(r, im) => {
                        self.flags_sub(self.get(r), im as i64 as u64);
                        self.rip = next;
                    }
                    Inst::AddReg(d, sr) => {
                        let v = self.flags_add(self.get(d), self.get(sr));
                        self.set(d, v);
                        self.rip = next;
                    }
                    Inst::SubReg(d, sr) => {
                        let v = self.flags_sub(self.get(d), self.get(sr));
                        self.set(d, v);
                        self.rip = next;
                    }
                    Inst::CmpReg(d, sr) => {
                        self.flags_sub(self.get(d), self.get(sr));
                        self.rip = next;
                    }
                    Inst::TestReg(d, sr) => {
                        self.flags_logic(self.get(d) & self.get(sr));
                        self.rip = next;
                    }
                    Inst::Jmp(rel) => {
                        self.rip = next.wrapping_add(rel as i64 as u64);
                    }
                    Inst::Jcc(c, rel) => {
                        self.rip = if self.flags.test(c) {
                            next.wrapping_add(rel as i64 as u64)
                        } else {
                            next
                        };
                    }
                    _ => break 'fast,
                }
                self.retired += 1;
                let cycles = cost.inst_cost(&op.inst);
                lsteps += 1;
                lcycles += cycles;
                linst = Some(op.inst);
                on_step(
                    rip_before,
                    &Step {
                        event: StepEvent::Executed,
                        cycles,
                        inst: Some(op.inst),
                    },
                );
                if obs {
                    sim_obs::span_step(clock + lcycles, self.rip);
                }
                i += 1;
                if i >= ops.len() {
                    break 'replay TraceRun::Done;
                }
                continue 'replay;
            }
            let s = self.exec(op.inst, op.len as usize, mem, clock + lcycles, cost);
            lsteps += 1;
            lcycles += s.cycles;
            linst = s.inst;
            on_step(rip_before, &s);
            if obs {
                sim_obs::span_step(clock + lcycles, self.rip);
            }
            match s.event {
                StepEvent::Executed => {
                    if matches!(s.inst, Some(Inst::Vsyscall)) {
                        lvdso += 1;
                    }
                }
                StepEvent::Syscall { site, .. } => {
                    // Direct-path syscall entry inside trace execution:
                    // the kernel-provided hook may service the syscall in
                    // place (identical register, clock, and statistics
                    // effects as a block exit + re-entry would have).
                    match syscall_fast(&mut *self, &mut *mem, site, clock + lcycles) {
                        HookAction::Pass => break TraceRun::Event(s.event),
                        HookAction::Handled { charge, stop } => {
                            lcycles += charge;
                            if stop {
                                // Deadline reached: end the block; the
                                // caller's clock += cycles lands exactly
                                // on the post-syscall boundary.
                                break TraceRun::Budget;
                            }
                            // The serialize in the hook may have flushed
                            // (stamp changed): revalidate from cold.
                            if self.trace_replay_break {
                                if obs {
                                    sim_obs::trace_side_exit();
                                }
                                break TraceRun::SideExit;
                            }
                            i += 1;
                            if i < ops.len() {
                                // Syscalls are terminal ops today, but a
                                // mid-trace return lands on the loop-top
                                // rip check either way.
                                continue;
                            }
                            if self.rip == entry {
                                // Self-looping trace: the return address
                                // is our own entry and nothing was
                                // flushed, so the fresh-gen compare the
                                // dispatcher would do is a foregone
                                // conclusion — loop in place.
                                i = 0;
                                wraps += 1;
                                continue;
                            }
                            break TraceRun::Done;
                        }
                    }
                }
                event => break TraceRun::Event(event),
            }
            i += 1;
            if i >= ops.len() {
                break TraceRun::Done;
            }
            // An own-core store in this op may have rewritten upcoming
            // bytes (or a serializing op flushed the icache); fall back
            // to cold fetch which sees the new bytes (x86 coherent SMC).
            if self.trace_replay_break {
                if obs {
                    sim_obs::trace_side_exit();
                }
                break TraceRun::SideExit;
            }
        };
        *inst = linst;
        *steps = lsteps;
        *cycles = lcycles;
        *vdso_calls = lvdso;
        // Occupancy bookkeeping (host-side only; never observable by the
        // guest): one enter per dispatch plus one per in-place self-loop
        // wrap, every step retired inside the trace, and the exit kind.
        {
            let t = tc.get_mut(idx);
            t.enters += 1 + wraps;
            t.steps += lsteps - steps0;
            if matches!(run, TraceRun::SideExit) {
                t.side_exits += 1;
            }
        }
        self.trace_replaying = false;
        self.trace = Some(tc);
        if !self.pending_trace_unlinks.is_empty() {
            let mut pages = std::mem::take(&mut self.pending_trace_unlinks);
            if let Some(tc) = self.trace.as_deref_mut() {
                for &page in &pages {
                    tc.unlink_page(page);
                }
            }
            pages.clear();
            self.pending_trace_unlinks = pages; // keep the allocation
        }
        run
    }

    /// Like [`Cpu::step`], but captures the decoded instruction (and its
    /// icache entry's decode-time page versions) into the in-progress
    /// trace recording.
    fn step_capture(&mut self, mem: &mut AddressSpace, clock: u64, cost: &CostModel) -> Step {
        let (inst, len) = match self.fetch_decode(mem) {
            Ok(x) => x,
            Err(event) => {
                return Step {
                    event,
                    cycles: cost.alu,
                    inst: None,
                }
            }
        };
        let rip = self.rip;
        if let Some(tc) = self.trace.as_deref_mut() {
            if let Some(rec) = tc.rec.as_mut() {
                if !rec.aborted {
                    // Take the staleness witness from the icache entry,
                    // never from current memory: a trace must only ever
                    // validate against the exact bytes its ops decoded
                    // from (a stale-but-fresh decode after a cross-core
                    // write would otherwise survive the next serialize).
                    match self.icache.get(&rip) {
                        Some(e) if e.mem_gen == rec.mem_gen => {
                            let mut ok = true;
                            for &(page, ver) in &e.pages[..e.npages as usize] {
                                match rec.pages.iter().position(|&(p, _)| p == page) {
                                    Some(j) => {
                                        if rec.pages[j].1 != ver {
                                            ok = false;
                                            break;
                                        }
                                    }
                                    None => rec.pages.push((page, ver)),
                                }
                            }
                            if ok && rec.ops.len() < tc.params.max_ops {
                                rec.ops.push(TraceOp {
                                    rip,
                                    inst,
                                    len: len as u8,
                                });
                            } else {
                                rec.aborted = true;
                            }
                        }
                        _ => rec.aborted = true,
                    }
                }
            }
        }
        self.exec(inst, len, mem, clock, cost)
    }

    /// The trace-engine dispatcher: enters validated traces at block
    /// heads, profiles cold heads, records hot ones, and otherwise steps
    /// exactly like the plain block loop. Accounting (`steps`, `cycles`,
    /// per-step clock, the `on_step` hook, span streams) is identical to
    /// [`Cpu::run_block`] instruction for instruction.
    fn run_block_traced(
        &mut self,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
        budget: u64,
        mut on_step: impl FnMut(u64, &Step),
        mut syscall_fast: impl FnMut(&mut Cpu, &mut AddressSpace, u64, u64) -> HookAction,
    ) -> BlockExit {
        let mut cycles = 0u64;
        let mut steps = 0u64;
        let mut vdso_calls = 0u64;
        let mut inst = None;
        let obs = sim_obs::enabled();
        let mut at_head = true;
        let mut from_trace = false;
        while steps < budget {
            if at_head {
                let mut idx = self.trace_validate(mem);
                if idx.is_some() {
                    // A recording that ran into an existing trace closes
                    // here so the two can chain. Finalizing can reset a
                    // full pool, so the index is re-resolved afterwards
                    // rather than trusted.
                    let flush_gen = self.flush_gen;
                    let rip = self.rip;
                    if let Some(tc) = self.trace.as_deref_mut() {
                        if tc.rec.is_some() {
                            tc.finalize(flush_gen);
                            idx = tc.lookup(rip);
                        }
                    }
                }
                if let Some(idx) = idx {
                    if obs {
                        if from_trace {
                            sim_obs::trace_link();
                        } else {
                            sim_obs::trace_enter();
                        }
                    }
                    match self.exec_trace(
                        idx,
                        mem,
                        clock,
                        cost,
                        budget,
                        obs,
                        &mut cycles,
                        &mut steps,
                        &mut vdso_calls,
                        &mut inst,
                        &mut on_step,
                        &mut syscall_fast,
                    ) {
                        TraceRun::Event(event) => {
                            if obs {
                                sim_obs::block_len(steps);
                            }
                            return BlockExit {
                                event,
                                cycles,
                                steps,
                                vdso_calls,
                                inst,
                            };
                        }
                        TraceRun::Done => {
                            // The terminal branch chains straight into the
                            // successor lookup — no dispatcher exit.
                            from_trace = true;
                            continue;
                        }
                        TraceRun::SideExit => {
                            from_trace = false;
                            continue;
                        }
                        TraceRun::Budget => break,
                    }
                }
                // Cold head: profile it, start recording past the
                // threshold.
                let rip = self.rip;
                let mem_gen = mem.generation();
                if let Some(tc) = self.trace.as_deref_mut() {
                    if tc.rec.is_none() && tc.bump_heat(rip) {
                        tc.start_recording(rip, mem_gen);
                    }
                }
            }
            if obs {
                sim_obs::set_clock(clock + cycles);
            }
            let rip_before = self.rip;
            let s = self.step_capture(mem, clock + cycles, cost);
            steps += 1;
            cycles += s.cycles;
            inst = s.inst;
            on_step(rip_before, &s);
            if obs {
                sim_obs::span_step(clock + cycles, self.rip);
            }
            match s.event {
                StepEvent::Executed => {
                    if matches!(s.inst, Some(Inst::Vsyscall)) {
                        vdso_calls += 1;
                    }
                }
                event => {
                    self.trace_finalize_recording();
                    sim_obs::block_len(steps);
                    return BlockExit {
                        event,
                        cycles,
                        steps,
                        vdso_calls,
                        inst,
                    };
                }
            }
            at_head = Self::ends_block(s.inst);
            from_trace = false;
            // Close the recording on loop closure (back at its own
            // entry), on an abort, or when it reaches an already-formed
            // trace; max-op overflow marks itself aborted in capture.
            let rip_now = self.rip;
            let flush_gen = self.flush_gen;
            if let Some(tc) = self.trace.as_deref_mut() {
                let mut close = match &tc.rec {
                    Some(rec) => rec.aborted || rip_now == rec.entry,
                    None => false,
                };
                if !close && tc.rec.is_some() && tc.lookup(rip_now).is_some() {
                    close = true;
                }
                if close {
                    tc.finalize(flush_gen);
                }
            }
        }
        self.trace_finalize_recording();
        sim_obs::block_len(steps);
        BlockExit {
            event: StepEvent::Executed,
            cycles,
            steps,
            vdso_calls,
            inst,
        }
    }

    /// Closes any in-progress recording at a block exit.
    fn trace_finalize_recording(&mut self) {
        let flush_gen = self.flush_gen;
        if let Some(tc) = self.trace.as_deref_mut() {
            if tc.rec.is_some() {
                tc.finalize(flush_gen);
            }
        }
    }
}

/// Disposition of a syscall hit during trace replay, returned by the
/// kernel-provided fast-path hook (see [`Cpu::run_block_hooked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Not a fast-path syscall: surface it as a normal block exit.
    Pass,
    /// Serviced in place: the hook already applied the architectural
    /// effects (rip, registers, serialization, statistics); `charge` is
    /// the kernel-entry + service cost to fold into the block's cycles.
    /// `stop` ends the block (the caller's run deadline was reached).
    Handled { charge: u64, stop: bool },
}

/// How one [`Cpu::exec_trace`] replay ended.
enum TraceRun {
    /// A kernel event (syscall, fault, `hlt`, `int3`) — ends the block.
    Event(StepEvent),
    /// All ops replayed; the terminal branch decides the next head.
    Done,
    /// Control flow diverged from the recording (or the trace was
    /// unlinked mid-replay); fall back to cold execution.
    SideExit,
    /// The step budget ran out mid-trace.
    Budget,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Asm;
    use sim_mem::Perms;

    fn setup(code: &[u8]) -> (Cpu, AddressSpace) {
        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RX, "code").unwrap();
        mem.write_raw(0x1000, code).unwrap();
        mem.map(0x8000, 0x1000, Perms::RW, "[stack]").unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        cpu.set(Reg::Rsp, 0x9000);
        (cpu, mem)
    }

    fn run_until_hlt(cpu: &mut Cpu, mem: &mut AddressSpace) -> u64 {
        let cost = CostModel::DEFAULT;
        let mut cycles = 0;
        for _ in 0..10_000 {
            let s = cpu.step(mem, cycles, &cost);
            cycles += s.cycles;
            match s.event {
                StepEvent::Executed => {}
                StepEvent::Hlt => return cycles,
                e => panic!("unexpected event {e:?} at rip {:#x}", cpu.rip),
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_loop() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0);
        a.mov_imm(Reg::Rcx, 10);
        a.label("loop");
        a.add_imm(Reg::Rax, 3);
        a.sub_imm(Reg::Rcx, 1);
        a.jnz("loop");
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rax), 30);
        assert_eq!(cpu.get(Reg::Rcx), 0);
    }

    #[test]
    fn call_ret_stack_discipline() {
        let mut a = Asm::new();
        a.call("f");
        a.inst(Inst::Hlt);
        a.label("f");
        a.mov_imm(Reg::Rbx, 77);
        a.ret();
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 77);
        assert_eq!(cpu.get(Reg::Rsp), 0x9000);
    }

    #[test]
    fn syscall_event_preserves_state() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 500);
        a.syscall();
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        let before_rip = cpu.rip;
        let s = cpu.step(&mut mem, 0, &cost);
        assert_eq!(
            s.event,
            StepEvent::Syscall {
                site: 0x100a,
                sysenter: false
            }
        );
        // rip unchanged: kernel owns the architectural effect.
        assert_eq!(cpu.rip, before_rip);
        assert_eq!(cpu.get(Reg::Rax), 500);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        // rax = -1 (signed) compared with 1: jl taken, jb not taken
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, u64::MAX); // -1
        a.cmp_imm(Reg::Rax, 1);
        a.jl("signed_less");
        a.inst(Inst::Hlt); // not reached
        a.label("signed_less");
        a.mov_imm(Reg::Rbx, 1);
        // unsigned: -1 is huge, so jb must NOT be taken
        a.cmp_imm(Reg::Rax, 1);
        a.jcc(Cond::B, "bad");
        a.mov_imm(Reg::Rcx, 2);
        a.inst(Inst::Hlt);
        a.label("bad");
        a.mov_imm(Reg::Rcx, 99);
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 1);
        assert_eq!(cpu.get(Reg::Rcx), 2);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rdi, 0x8000);
        a.mov_imm(Reg::Rax, 0xdead_beef);
        a.store(Reg::Rdi, 0x10, Reg::Rax);
        a.load(Reg::Rbx, Reg::Rdi, 0x10);
        a.load_byte(Reg::Rcx, Reg::Rdi, 0x10);
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 0xdead_beef);
        assert_eq!(cpu.get(Reg::Rcx), 0xef);
    }

    #[test]
    fn call_reg_pushes_return_address() {
        // The zpoline primitive: rax holds a small number, call *%rax lands
        // in the trampoline page; the return address (site + 2) is on the
        // stack.
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0x2000);
        a.call_reg(Reg::Rax);
        let code = a.finish();
        let (mut cpu, mut mem) = setup(&code);
        mem.map(0x2000, 0x1000, Perms::RX, "tramp").unwrap();
        mem.write_raw(0x2000, &[0xf4]).unwrap(); // hlt
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost); // mov
        cpu.step(&mut mem, 0, &cost); // call *rax
        assert_eq!(cpu.rip, 0x2000);
        let ret = mem.read_u64(0x8ff8, Pkru::ALL_ACCESS).unwrap();
        assert_eq!(ret, 0x1000 + 12); // mov(10) + call_reg(2)
    }

    #[test]
    fn fault_on_unmapped_leaves_rip() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rdi, 0x5_0000);
        a.load(Reg::Rax, Reg::Rdi, 0);
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        let rip = cpu.rip;
        let s = cpu.step(&mut mem, 0, &cost);
        match s.event {
            StepEvent::Fault(f) => {
                assert_eq!(f.addr, 0x5_0000);
                assert_eq!(cpu.rip, rip);
            }
            e => panic!("expected fault, got {e:?}"),
        }
    }

    #[test]
    fn own_writes_invalidate_own_icache() {
        // Self-modifying code on the same core takes effect immediately
        // (x86 coherent SMC): overwrite an upcoming `mov rbx, 1` with nops.
        let mut a = Asm::new();
        a.jmp("start"); // warm the icache by jumping over the target once
        a.label("target");
        a.mov_imm(Reg::Rbx, 1);
        a.inst(Inst::Hlt);
        a.label("start");
        // nop out all 10 bytes of `target`'s mov with two overlapping
        // 8-byte stores… then jump there.
        a.mov_imm(Reg::Rdi, 0); // patched below to target addr
        a.mov_imm(Reg::Rax, u64::from_le_bytes([0x90; 8]));
        a.store(Reg::Rdi, 0, Reg::Rax);
        a.store(Reg::Rdi, 2, Reg::Rax);
        a.jmp("target");
        let prog = a.finish_program();
        let target = 0x1000 + prog.sym("target");
        let mut bytes = prog.bytes.clone();
        // patch the first mov_imm rdi immediate (it is at offset start+2)
        let start = prog.sym("start") as usize;
        bytes[start + 2..start + 10].copy_from_slice(&target.to_le_bytes());

        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RWX, "code").unwrap();
        mem.write_raw(0x1000, &bytes).unwrap();
        mem.map(0x8000, 0x1000, Perms::RW, "[stack]").unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        cpu.set(Reg::Rsp, 0x9000);
        let cost = CostModel::DEFAULT;
        let mut clock = 0;
        for _ in 0..100 {
            let s = cpu.step(&mut mem, clock, &cost);
            clock += s.cycles;
            match s.event {
                StepEvent::Executed => {}
                StepEvent::Hlt => break,
                e => panic!("unexpected {e:?}"),
            }
        }
        // The mov was overwritten before execution: rbx stays 0. The mov
        // *would* have run from a stale icache if self-writes didn't
        // invalidate.
        assert_eq!(cpu.get(Reg::Rbx), 0);
    }

    #[test]
    fn cross_core_icache_staleness_until_serialize() {
        // Core B caches a decode; core A (modeled as a raw memory write +
        // *no* fence on B) rewrites it. B keeps executing the stale decode
        // until it serializes — the P5 hazard.
        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RWX, "code").unwrap();
        let mut a = Asm::new();
        a.mov_imm(Reg::Rbx, 1);
        a.inst(Inst::Hlt);
        mem.write_raw(0x1000, &a.finish()).unwrap();

        let mut b = Cpu::new();
        b.rip = 0x1000;
        let cost = CostModel::DEFAULT;
        // B decodes (and caches) the mov by executing it once; rewind rip.
        b.step(&mut mem, 0, &cost);
        b.rip = 0x1000;
        assert!(b.icache_len() > 0);

        // "Core A" rewrites the mov's immediate to 2 via a raw write.
        let mut patch = Inst::MovImm(Reg::Rbx, 2).encode();
        patch.push(0xf4);
        mem.write_raw(0x1000, &patch).unwrap();

        // B still executes the stale decode…
        b.step(&mut mem, 0, &cost);
        assert_eq!(b.get(Reg::Rbx), 1, "stale icache should win");

        // …until it serializes.
        b.rip = 0x1000;
        b.flush_icache();
        b.step(&mut mem, 0, &cost);
        assert_eq!(b.get(Reg::Rbx), 2);
    }

    #[test]
    fn vsyscall_reads_clock_without_kernel() {
        let mut a = Asm::new();
        a.vsyscall();
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        let s = cpu.step(&mut mem, 123456, &cost);
        assert_eq!(s.event, StepEvent::Executed);
        assert_eq!(cpu.get(Reg::Rax), 123456);
    }

    #[test]
    fn wrpkru_controls_data_access() {
        let mut a = Asm::new();
        // deny key 1, then try to read a key-1 page
        a.mov_imm(Reg::Rax, 1 << 2); // AD for key 1
        a.wrpkru();
        a.mov_imm(Reg::Rdi, 0x3000);
        a.load(Reg::Rbx, Reg::Rdi, 0);
        let code = a.finish();
        let (mut cpu, mut mem) = setup(&code);
        mem.map(0x3000, 0x1000, Perms::RW, "secret").unwrap();
        mem.set_pkey(0x3000, 0x1000, 1).unwrap();
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        cpu.step(&mut mem, 0, &cost);
        cpu.step(&mut mem, 0, &cost);
        let s = cpu.step(&mut mem, 0, &cost);
        match s.event {
            StepEvent::Fault(f) => assert_eq!(f.reason, sim_mem::FaultReason::PkuDenied),
            e => panic!("expected PKU fault, got {e:?}"),
        }
    }

    #[test]
    fn syscall_clobbers_rcx_r11() {
        let mut cpu = Cpu::new();
        cpu.flags = Flags {
            zf: true,
            sf: false,
            cf: true,
            of: false,
        };
        cpu.apply_syscall_clobbers(0xabcd);
        assert_eq!(cpu.get(Reg::Rcx), 0xabcd);
        assert_eq!(cpu.get(Reg::R11), 0b101);
    }
}
