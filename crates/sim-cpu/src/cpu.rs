//! A single guest CPU core.

use crate::cost::CostModel;
use sim_isa::{decode, Cond, Inst, Reg};
use sim_mem::{AddressSpace, Fault, Pkru};
use crate::fasthash::FastMap;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Carry (unsigned overflow / borrow).
    pub cf: bool,
    /// Signed overflow.
    pub of: bool,
}

impl Flags {
    fn pack(self) -> u64 {
        (self.zf as u64) | (self.sf as u64) << 1 | (self.cf as u64) << 2 | (self.of as u64) << 3
    }

    fn unpack(v: u64) -> Flags {
        Flags {
            zf: v & 1 != 0,
            sf: v & 2 != 0,
            cf: v & 4 != 0,
            of: v & 8 != 0,
        }
    }

    fn test(self, c: Cond) -> bool {
        match c {
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || (self.sf != self.of),
            Cond::G => !self.zf && (self.sf == self.of),
        }
    }
}

/// What a [`Cpu::step`] produced beyond plain execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction retired normally.
    Executed,
    /// A `syscall`/`sysenter` was fetched at `site`. The CPU does **not**
    /// advance `rip` or touch registers — the kernel decides (execute, SUD
    /// SIGSYS, ptrace stop, ...).
    Syscall {
        /// Address of the first opcode byte.
        site: u64,
        /// True for `sysenter` (`0f 34`).
        sysenter: bool,
    },
    /// `hlt` executed (threads normally exit via `exit` syscalls; `hlt` is a
    /// hard stop used by bare tests).
    Hlt,
    /// `int3` breakpoint.
    Int3,
    /// A fetch or data access faulted; `rip` still points at the faulting
    /// instruction.
    Fault(Fault),
}

/// The result of one step: the event, the cycles consumed, and the decoded
/// instruction (when fetch succeeded) for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Outcome.
    pub event: StepEvent,
    /// Cycles consumed by this step.
    pub cycles: u64,
    /// The decoded instruction, if any.
    pub inst: Option<Inst>,
}

/// What [`Cpu::run_block`] produced: the exit event plus the block's
/// aggregate accounting, which matches a per-[`Cpu::step`] loop exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockExit {
    /// The event that ended the block ([`StepEvent::Executed`] when the
    /// budget ran out).
    pub event: StepEvent,
    /// Total cycles consumed by every step in the block.
    pub cycles: u64,
    /// Steps consumed (every step counts, including the final event step —
    /// the scheduler's slice accounting unit).
    pub steps: u64,
    /// `vsyscall` instructions executed within the block.
    pub vdso_calls: u64,
    /// Decoded instruction of the final step, if fetch succeeded.
    pub inst: Option<Inst>,
}

/// Which icache flush strategy a core uses at serialization points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IcacheMode {
    /// Generation-based revalidation against page content versions (the
    /// fast path).
    #[default]
    Revalidate,
    /// Drop every cached decode at every serialization point (the original
    /// engine's behavior, kept as the benchmarking baseline).
    SeedFlush,
}

/// One guest core: registers + flags + PKRU + a decoded-instruction cache.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg::index`].
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Arithmetic flags.
    pub flags: Flags,
    /// Protection-key rights register (thread-local, as on real hardware).
    pub pkru: Pkru,
    icache: FastMap<u64, ICacheEntry>,
    /// Page base → rips of cached decodes whose bytes touch that page.
    /// Store invalidation consults only the (at most three) pages a store
    /// can affect instead of scanning the whole icache. Entries may be
    /// stale (decode already evicted); they are pruned lazily.
    icache_index: FastMap<u64, Vec<u64>>,
    /// Serialization generation: bumped by [`Cpu::flush_icache`]. Cached
    /// decodes whose `fresh_gen` lags are revalidated against page content
    /// versions before reuse (identical memory decodes identically, so this
    /// is guest-invisible) instead of being unconditionally re-decoded.
    flush_gen: u64,
    /// Reproduce the original engine's flush behavior (drop everything at
    /// every serialization point) instead of generation-based revalidation.
    /// Guest-invisible either way; used for the benchmarking baseline.
    seed_flush: bool,
    /// Retired instruction count (for debugging and run limits).
    pub retired: u64,
}

/// One cached decode, revalidatable across serialization points.
#[derive(Debug, Clone, Copy)]
struct ICacheEntry {
    inst: Inst,
    len: u8,
    /// Usable without any checks while this equals [`Cpu::flush_gen`]
    /// (no serialization since decode — staleness is *required* then).
    fresh_gen: u64,
    /// [`AddressSpace::generation`] at decode time: mapping/protection
    /// changes force a real re-decode.
    mem_gen: u64,
    /// `(page base, content version)` for each page the decode's bytes
    /// touch (at most two: decodes are ≤ 10 bytes).
    pages: [(u64, u64); 2],
    npages: u8,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A zeroed core.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; 16],
            rip: 0,
            flags: Flags::default(),
            pkru: Pkru::ALL_ACCESS,
            icache: FastMap::default(),
            icache_index: FastMap::default(),
            flush_gen: 0,
            seed_flush: false,
            retired: 0,
        }
    }

    /// Register read.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Register write.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Flushes the decoded-instruction cache (serializing event: `cpuid`,
    /// `fence`, or any kernel entry on this core).
    ///
    /// Architecturally this makes every store — own or cross-core — visible
    /// to subsequent fetches. The fast implementation bumps a generation and
    /// revalidates entries lazily against page content versions (unchanged
    /// bytes decode identically, so reuse is exact); seed mode drops the
    /// cache wholesale like the original engine.
    pub fn flush_icache(&mut self) {
        sim_obs::icache_flush();
        if self.seed_flush {
            self.icache.clear();
            self.icache_index.clear();
        } else {
            self.flush_gen += 1;
        }
    }

    /// Selects the icache flush strategy: [`IcacheMode::Revalidate`] is the
    /// generation-based fast path; [`IcacheMode::SeedFlush`] reproduces the
    /// original engine's flush-everything behavior (the benchmarking
    /// baseline). Guest-invisible either way.
    pub fn set_icache_mode(&mut self, mode: IcacheMode) {
        self.seed_flush = mode == IcacheMode::SeedFlush;
    }

    /// The currently selected icache flush strategy.
    pub fn icache_mode(&self) -> IcacheMode {
        if self.seed_flush {
            IcacheMode::SeedFlush
        } else {
            IcacheMode::Revalidate
        }
    }

    /// Selects the original engine's flush-everything behavior (the
    /// benchmarking baseline) over generation-based revalidation.
    #[deprecated(note = "use set_icache_mode(IcacheMode::SeedFlush | IcacheMode::Revalidate)")]
    pub fn set_seed_flush(&mut self, seed: bool) {
        self.set_icache_mode(if seed {
            IcacheMode::SeedFlush
        } else {
            IcacheMode::Revalidate
        });
    }

    /// Number of decoded entries currently cached (observability for P5
    /// experiments).
    pub fn icache_len(&self) -> usize {
        self.icache.len()
    }

    /// Applies the x86-64 syscall-entry register clobbers: the kernel leaves
    /// the return address in `rcx` and saved flags in `r11` — which is why
    /// K23's trampoline may reuse them without saving (paper §6.2.1).
    pub fn apply_syscall_clobbers(&mut self, return_rip: u64) {
        self.set(Reg::Rcx, return_rip);
        self.set(Reg::R11, self.flags.pack());
    }

    /// Restores flags from the packed `r11` form (used by sigreturn paths).
    pub fn flags_from_packed(&mut self, v: u64) {
        self.flags = Flags::unpack(v);
    }

    /// Packs current flags (for signal frames).
    pub fn packed_flags(&self) -> u64 {
        self.flags.pack()
    }

    #[inline]
    fn page_of(addr: u64) -> u64 {
        addr & !(sim_mem::PAGE_SIZE - 1)
    }

    /// Invalidates any cached decode whose bytes overlap `[addr, addr+len)`.
    ///
    /// Decodes are at most 10 bytes, so only rips in `(addr-9 ..
    /// addr+len)` can overlap — and those live in at most a handful of
    /// pages, found through `icache_index` rather than a full-cache scan.
    /// Cross-page decodes are registered under every page they touch, so a
    /// store into either page finds them.
    fn invalidate_icache_range(&mut self, addr: u64, len: u64) {
        if self.icache.is_empty() {
            return;
        }
        let end = addr.saturating_add(len);
        let first = Self::page_of(addr.saturating_sub(9));
        let last = Self::page_of(end - 1); // len >= 1 always
        let Cpu {
            icache,
            icache_index,
            ..
        } = self;
        let mut removed = 0u64;
        let mut page = first;
        loop {
            if let Some(rips) = icache_index.get_mut(&page) {
                rips.retain(|&rip| match icache.get(&rip) {
                    Some(e) => {
                        if rip < end && rip.wrapping_add(e.len as u64) > addr {
                            icache.remove(&rip);
                            removed += 1;
                            false
                        } else {
                            true
                        }
                    }
                    None => false, // stale entry: decode already evicted
                });
                if rips.is_empty() {
                    icache_index.remove(&page);
                }
            }
            if page == last {
                break;
            }
            page += sim_mem::PAGE_SIZE;
        }
        if removed > 0 {
            sim_obs::icache_invalidate(addr, removed);
        }
    }

    fn fetch_decode(&mut self, mem: &mut AddressSpace) -> Result<(Inst, usize), StepEvent> {
        if let Some(e) = self.icache.get_mut(&self.rip) {
            if e.fresh_gen == self.flush_gen {
                sim_obs::icache_fresh_hit();
                return Ok((e.inst, e.len as usize));
            }
            // A serialization point passed since this decode. Reuse it only
            // if the underlying bytes provably haven't changed: same
            // mapping/protection generation and same content version on
            // every touched page. Otherwise drop it and re-decode.
            let mut valid = mem.generation() == e.mem_gen;
            for &(page, ver) in &e.pages[..e.npages as usize] {
                valid = valid && mem.page_version(page) == Some(ver);
            }
            if valid {
                e.fresh_gen = self.flush_gen;
                sim_obs::icache_revalidate(self.rip);
                return Ok((e.inst, e.len as usize));
            }
            self.icache.remove(&self.rip); // index pruned lazily
        }
        let mut buf = [0u8; 10];
        let n = match mem.fetch(self.rip, &mut buf, self.pkru) {
            Ok(n) => n,
            Err(f) => return Err(StepEvent::Fault(f)),
        };
        match decode(&buf[..n]) {
            Ok((inst, len)) => {
                // Register the decode under every page its bytes touch so
                // page-indexed invalidation finds straddling decodes, and
                // record the pages' content versions for revalidation.
                let mut entry = ICacheEntry {
                    inst,
                    len: len as u8,
                    fresh_gen: self.flush_gen,
                    mem_gen: mem.generation(),
                    pages: [(0, 0); 2],
                    npages: 0,
                };
                let mut page = Self::page_of(self.rip);
                let last = Self::page_of(self.rip.saturating_add(len as u64 - 1));
                loop {
                    entry.pages[entry.npages as usize] =
                        (page, mem.page_version(page).unwrap_or(0));
                    entry.npages += 1;
                    let rips = self.icache_index.entry(page).or_default();
                    if !rips.contains(&self.rip) {
                        rips.push(self.rip);
                    }
                    if page == last {
                        break;
                    }
                    page += sim_mem::PAGE_SIZE;
                }
                self.icache.insert(self.rip, entry);
                sim_obs::icache_decode();
                Ok((inst, len))
            }
            Err(_) => Err(StepEvent::Fault(Fault {
                addr: self.rip,
                access: sim_mem::Access::Fetch,
                reason: sim_mem::FaultReason::Protection,
            })),
        }
    }

    fn push(&mut self, mem: &mut AddressSpace, v: u64) -> Result<(), Fault> {
        let rsp = self.get(Reg::Rsp).wrapping_sub(8);
        mem.write_u64(rsp, v, self.pkru)?;
        self.set(Reg::Rsp, rsp);
        Ok(())
    }

    fn pop(&mut self, mem: &mut AddressSpace) -> Result<u64, Fault> {
        let rsp = self.get(Reg::Rsp);
        let v = mem.read_u64(rsp, self.pkru)?;
        self.set(Reg::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    fn flags_add(&mut self, a: u64, b: u64) -> u64 {
        let (res, cf) = a.overflowing_add(b);
        let of = ((a ^ res) & (b ^ res)) >> 63 != 0;
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf,
            of,
        };
        res
    }

    fn flags_sub(&mut self, a: u64, b: u64) -> u64 {
        let (res, cf) = a.overflowing_sub(b);
        let of = ((a ^ b) & (a ^ res)) >> 63 != 0;
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf,
            of,
        };
        res
    }

    fn flags_logic(&mut self, res: u64) -> u64 {
        self.flags = Flags {
            zf: res == 0,
            sf: (res as i64) < 0,
            cf: false,
            of: false,
        };
        res
    }

    /// Executes one instruction.
    ///
    /// `clock` is the current global cycle counter (consumed by the
    /// `vsyscall` fast time path). Kernel-entering instructions are *not*
    /// executed — they surface as [`StepEvent::Syscall`] with state
    /// untouched, and the kernel performs the architectural effects.
    pub fn step(&mut self, mem: &mut AddressSpace, clock: u64, cost: &CostModel) -> Step {
        let (inst, len) = match self.fetch_decode(mem) {
            Ok(x) => x,
            Err(event) => {
                return Step {
                    event,
                    cycles: cost.alu,
                    inst: None,
                }
            }
        };
        let cycles = cost.inst_cost(&inst);
        let next = self.rip.wrapping_add(len as u64);

        macro_rules! fault {
            ($f:expr) => {
                return Step {
                    event: StepEvent::Fault($f),
                    cycles,
                    inst: Some(inst),
                }
            };
        }

        match inst {
            Inst::Syscall | Inst::Sysenter => {
                return Step {
                    event: StepEvent::Syscall {
                        site: self.rip,
                        sysenter: matches!(inst, Inst::Sysenter),
                    },
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Hlt => {
                return Step {
                    event: StepEvent::Hlt,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Int3 => {
                self.rip = next;
                self.retired += 1;
                return Step {
                    event: StepEvent::Int3,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Nop => {
                // Batch-consume nop runs (the trampoline sled): zero-cost
                // single-byte nops with no architectural effect, so skipping
                // the whole run in one step is semantically identical and
                // keeps sled traversal cheap for the host.
                let mut end = next;
                let mut buf = [0u8; 64];
                #[allow(clippy::while_let_loop)] // labeled break from the inner scan
                'scan: loop {
                    let n = match mem.fetch(end, &mut buf, self.pkru) {
                        Ok(n) => n,
                        Err(_) => break,
                    };
                    for &b in &buf[..n] {
                        if b != 0x90 {
                            break 'scan;
                        }
                        end += 1;
                        self.retired += 1;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                self.rip = end;
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Cpuid | Inst::Fence => self.flush_icache(),
            Inst::Vsyscall => self.set(Reg::Rax, clock),
            Inst::Rdpkru => self.set(Reg::Rax, self.pkru.0 as u64),
            Inst::Wrpkru => self.pkru = Pkru(self.get(Reg::Rax) as u32),
            Inst::Push(r) => {
                if let Err(f) = self.push(mem, self.get(r)) {
                    fault!(f);
                }
            }
            Inst::Pop(r) => match self.pop(mem) {
                Ok(v) => self.set(r, v),
                Err(f) => fault!(f),
            },
            Inst::MovImm(r, v) => self.set(r, v),
            Inst::MovReg(d, s) => self.set(d, self.get(s)),
            Inst::Load(d, b, off) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                match mem.read_u64(addr, self.pkru) {
                    Ok(v) => self.set(d, v),
                    Err(f) => fault!(f),
                }
            }
            Inst::Store(b, off, s) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                if let Err(f) = mem.write_u64(addr, self.get(s), self.pkru) {
                    fault!(f);
                }
                self.invalidate_icache_range(addr, 8);
            }
            Inst::LoadByte(d, b, off) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                match mem.read_u8(addr, self.pkru) {
                    Ok(v) => self.set(d, v as u64),
                    Err(f) => fault!(f),
                }
            }
            Inst::StoreByte(b, off, s) => {
                let addr = self.get(b).wrapping_add(off as i64 as u64);
                if let Err(f) = mem.write_u8(addr, self.get(s) as u8, self.pkru) {
                    fault!(f);
                }
                self.invalidate_icache_range(addr, 1);
            }
            Inst::Lea(d, off) => self.set(d, next.wrapping_add(off as i64 as u64)),
            Inst::AddReg(d, s) => {
                let v = self.flags_add(self.get(d), self.get(s));
                self.set(d, v);
            }
            Inst::SubReg(d, s) => {
                let v = self.flags_sub(self.get(d), self.get(s));
                self.set(d, v);
            }
            Inst::AndReg(d, s) => {
                let v = self.flags_logic(self.get(d) & self.get(s));
                self.set(d, v);
            }
            Inst::OrReg(d, s) => {
                let v = self.flags_logic(self.get(d) | self.get(s));
                self.set(d, v);
            }
            Inst::XorReg(d, s) => {
                let v = self.flags_logic(self.get(d) ^ self.get(s));
                self.set(d, v);
            }
            Inst::CmpReg(d, s) => {
                self.flags_sub(self.get(d), self.get(s));
            }
            Inst::TestReg(d, s) => {
                self.flags_logic(self.get(d) & self.get(s));
            }
            Inst::ImulReg(d, s) => {
                let v = self.get(d).wrapping_mul(self.get(s));
                self.flags_logic(v);
                self.set(d, v);
            }
            Inst::AddImm(r, i) => {
                let v = self.flags_add(self.get(r), i as i64 as u64);
                self.set(r, v);
            }
            Inst::SubImm(r, i) => {
                let v = self.flags_sub(self.get(r), i as i64 as u64);
                self.set(r, v);
            }
            Inst::AndImm(r, i) => {
                let v = self.flags_logic(self.get(r) & (i as i64 as u64));
                self.set(r, v);
            }
            Inst::OrImm(r, i) => {
                let v = self.flags_logic(self.get(r) | (i as i64 as u64));
                self.set(r, v);
            }
            Inst::XorImm(r, i) => {
                let v = self.flags_logic(self.get(r) ^ (i as i64 as u64));
                self.set(r, v);
            }
            Inst::CmpImm(r, i) => {
                self.flags_sub(self.get(r), i as i64 as u64);
            }
            Inst::ShlImm(r, i) => {
                let v = self.flags_logic(self.get(r) << (i & 63));
                self.set(r, v);
            }
            Inst::ShrImm(r, i) => {
                let v = self.flags_logic(self.get(r) >> (i & 63));
                self.set(r, v);
            }
            Inst::ShlCl(r) => {
                let c = self.get(Reg::Rcx) & 63;
                let v = self.flags_logic(self.get(r) << c);
                self.set(r, v);
            }
            Inst::ShrCl(r) => {
                let c = self.get(Reg::Rcx) & 63;
                let v = self.flags_logic(self.get(r) >> c);
                self.set(r, v);
            }
            Inst::BtMem(b, i) => {
                let idx = self.get(i);
                let addr = self.get(b).wrapping_add(idx / 8);
                match mem.read_u8(addr, self.pkru) {
                    Ok(byte) => {
                        // Only CF is affected, as on x86.
                        self.flags.cf = byte & (1 << (idx % 8)) != 0;
                    }
                    Err(f) => fault!(f),
                }
            }
            Inst::Jmp(rel) => {
                self.rip = next.wrapping_add(rel as i64 as u64);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Call(rel) => {
                if let Err(f) = self.push(mem, next) {
                    fault!(f);
                }
                self.rip = next.wrapping_add(rel as i64 as u64);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Jcc(c, rel) => {
                self.rip = if self.flags.test(c) {
                    next.wrapping_add(rel as i64 as u64)
                } else {
                    next
                };
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::CallReg(r) => {
                let target = self.get(r);
                if let Err(f) = self.push(mem, next) {
                    fault!(f);
                }
                self.rip = target;
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::JmpReg(r) => {
                self.rip = self.get(r);
                self.retired += 1;
                return Step {
                    event: StepEvent::Executed,
                    cycles,
                    inst: Some(inst),
                };
            }
            Inst::Ret => match self.pop(mem) {
                Ok(v) => {
                    self.rip = v;
                    self.retired += 1;
                    return Step {
                        event: StepEvent::Executed,
                        cycles,
                        inst: Some(inst),
                    };
                }
                Err(f) => fault!(f),
            },
        }

        self.rip = next;
        self.retired += 1;
        Step {
            event: StepEvent::Executed,
            cycles,
            inst: Some(inst),
        }
    }

    /// Runs up to `budget` steps without returning to the scheduler,
    /// stopping early at the first event that needs the kernel (syscall,
    /// fault, `hlt`, `int3`).
    ///
    /// Semantically this is exactly a [`Cpu::step`] loop: each step `i`
    /// observes the clock `clock + cycles-of-steps-0..i`, mirroring a
    /// caller that charges the global clock after every step. `on_step` is
    /// invoked after each step with the pre-step `rip` and the [`Step`]
    /// (pass a no-op closure for the fast path — it compiles away; pass a
    /// recording closure to capture an instruction-level trace).
    pub fn run_block(
        &mut self,
        mem: &mut AddressSpace,
        clock: u64,
        cost: &CostModel,
        budget: u64,
        mut on_step: impl FnMut(u64, &Step),
    ) -> BlockExit {
        let mut cycles = 0u64;
        let mut steps = 0u64;
        let mut vdso_calls = 0u64;
        let mut inst = None;
        let obs = sim_obs::enabled();
        while steps < budget {
            if obs {
                sim_obs::set_clock(clock + cycles);
            }
            let rip_before = self.rip;
            let s = self.step(mem, clock + cycles, cost);
            steps += 1;
            cycles += s.cycles;
            inst = s.inst;
            on_step(rip_before, &s);
            if obs {
                // Post-step clock and RIP: identical to the stepwise
                // engine's per-step hook, so range-span streams match.
                sim_obs::span_step(clock + cycles, self.rip);
            }
            match s.event {
                StepEvent::Executed => {
                    if matches!(s.inst, Some(Inst::Vsyscall)) {
                        vdso_calls += 1;
                    }
                }
                event => {
                    sim_obs::block_len(steps);
                    return BlockExit {
                        event,
                        cycles,
                        steps,
                        vdso_calls,
                        inst,
                    };
                }
            }
        }
        sim_obs::block_len(steps);
        BlockExit {
            event: StepEvent::Executed,
            cycles,
            steps,
            vdso_calls,
            inst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Asm;
    use sim_mem::Perms;

    fn setup(code: &[u8]) -> (Cpu, AddressSpace) {
        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RX, "code").unwrap();
        mem.write_raw(0x1000, code).unwrap();
        mem.map(0x8000, 0x1000, Perms::RW, "[stack]").unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        cpu.set(Reg::Rsp, 0x9000);
        (cpu, mem)
    }

    fn run_until_hlt(cpu: &mut Cpu, mem: &mut AddressSpace) -> u64 {
        let cost = CostModel::DEFAULT;
        let mut cycles = 0;
        for _ in 0..10_000 {
            let s = cpu.step(mem, cycles, &cost);
            cycles += s.cycles;
            match s.event {
                StepEvent::Executed => {}
                StepEvent::Hlt => return cycles,
                e => panic!("unexpected event {e:?} at rip {:#x}", cpu.rip),
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_loop() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0);
        a.mov_imm(Reg::Rcx, 10);
        a.label("loop");
        a.add_imm(Reg::Rax, 3);
        a.sub_imm(Reg::Rcx, 1);
        a.jnz("loop");
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rax), 30);
        assert_eq!(cpu.get(Reg::Rcx), 0);
    }

    #[test]
    fn call_ret_stack_discipline() {
        let mut a = Asm::new();
        a.call("f");
        a.inst(Inst::Hlt);
        a.label("f");
        a.mov_imm(Reg::Rbx, 77);
        a.ret();
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 77);
        assert_eq!(cpu.get(Reg::Rsp), 0x9000);
    }

    #[test]
    fn syscall_event_preserves_state() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 500);
        a.syscall();
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        let before_rip = cpu.rip;
        let s = cpu.step(&mut mem, 0, &cost);
        assert_eq!(
            s.event,
            StepEvent::Syscall {
                site: 0x100a,
                sysenter: false
            }
        );
        // rip unchanged: kernel owns the architectural effect.
        assert_eq!(cpu.rip, before_rip);
        assert_eq!(cpu.get(Reg::Rax), 500);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        // rax = -1 (signed) compared with 1: jl taken, jb not taken
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, u64::MAX); // -1
        a.cmp_imm(Reg::Rax, 1);
        a.jl("signed_less");
        a.inst(Inst::Hlt); // not reached
        a.label("signed_less");
        a.mov_imm(Reg::Rbx, 1);
        // unsigned: -1 is huge, so jb must NOT be taken
        a.cmp_imm(Reg::Rax, 1);
        a.jcc(Cond::B, "bad");
        a.mov_imm(Reg::Rcx, 2);
        a.inst(Inst::Hlt);
        a.label("bad");
        a.mov_imm(Reg::Rcx, 99);
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 1);
        assert_eq!(cpu.get(Reg::Rcx), 2);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rdi, 0x8000);
        a.mov_imm(Reg::Rax, 0xdead_beef);
        a.store(Reg::Rdi, 0x10, Reg::Rax);
        a.load(Reg::Rbx, Reg::Rdi, 0x10);
        a.load_byte(Reg::Rcx, Reg::Rdi, 0x10);
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        run_until_hlt(&mut cpu, &mut mem);
        assert_eq!(cpu.get(Reg::Rbx), 0xdead_beef);
        assert_eq!(cpu.get(Reg::Rcx), 0xef);
    }

    #[test]
    fn call_reg_pushes_return_address() {
        // The zpoline primitive: rax holds a small number, call *%rax lands
        // in the trampoline page; the return address (site + 2) is on the
        // stack.
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0x2000);
        a.call_reg(Reg::Rax);
        let code = a.finish();
        let (mut cpu, mut mem) = setup(&code);
        mem.map(0x2000, 0x1000, Perms::RX, "tramp").unwrap();
        mem.write_raw(0x2000, &[0xf4]).unwrap(); // hlt
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost); // mov
        cpu.step(&mut mem, 0, &cost); // call *rax
        assert_eq!(cpu.rip, 0x2000);
        let ret = mem.read_u64(0x8ff8, Pkru::ALL_ACCESS).unwrap();
        assert_eq!(ret, 0x1000 + 12); // mov(10) + call_reg(2)
    }

    #[test]
    fn fault_on_unmapped_leaves_rip() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rdi, 0x5_0000);
        a.load(Reg::Rax, Reg::Rdi, 0);
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        let rip = cpu.rip;
        let s = cpu.step(&mut mem, 0, &cost);
        match s.event {
            StepEvent::Fault(f) => {
                assert_eq!(f.addr, 0x5_0000);
                assert_eq!(cpu.rip, rip);
            }
            e => panic!("expected fault, got {e:?}"),
        }
    }

    #[test]
    fn own_writes_invalidate_own_icache() {
        // Self-modifying code on the same core takes effect immediately
        // (x86 coherent SMC): overwrite an upcoming `mov rbx, 1` with nops.
        let mut a = Asm::new();
        a.jmp("start"); // warm the icache by jumping over the target once
        a.label("target");
        a.mov_imm(Reg::Rbx, 1);
        a.inst(Inst::Hlt);
        a.label("start");
        // nop out all 10 bytes of `target`'s mov with two overlapping
        // 8-byte stores… then jump there.
        a.mov_imm(Reg::Rdi, 0); // patched below to target addr
        a.mov_imm(Reg::Rax, u64::from_le_bytes([0x90; 8]));
        a.store(Reg::Rdi, 0, Reg::Rax);
        a.store(Reg::Rdi, 2, Reg::Rax);
        a.jmp("target");
        let prog = a.finish_program();
        let target = 0x1000 + prog.sym("target");
        let mut bytes = prog.bytes.clone();
        // patch the first mov_imm rdi immediate (it is at offset start+2)
        let start = prog.sym("start") as usize;
        bytes[start + 2..start + 10].copy_from_slice(&target.to_le_bytes());

        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RWX, "code").unwrap();
        mem.write_raw(0x1000, &bytes).unwrap();
        mem.map(0x8000, 0x1000, Perms::RW, "[stack]").unwrap();
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        cpu.set(Reg::Rsp, 0x9000);
        let cost = CostModel::DEFAULT;
        let mut clock = 0;
        for _ in 0..100 {
            let s = cpu.step(&mut mem, clock, &cost);
            clock += s.cycles;
            match s.event {
                StepEvent::Executed => {}
                StepEvent::Hlt => break,
                e => panic!("unexpected {e:?}"),
            }
        }
        // The mov was overwritten before execution: rbx stays 0. The mov
        // *would* have run from a stale icache if self-writes didn't
        // invalidate.
        assert_eq!(cpu.get(Reg::Rbx), 0);
    }

    #[test]
    fn cross_core_icache_staleness_until_serialize() {
        // Core B caches a decode; core A (modeled as a raw memory write +
        // *no* fence on B) rewrites it. B keeps executing the stale decode
        // until it serializes — the P5 hazard.
        let mut mem = AddressSpace::new();
        mem.map(0x1000, 0x1000, Perms::RWX, "code").unwrap();
        let mut a = Asm::new();
        a.mov_imm(Reg::Rbx, 1);
        a.inst(Inst::Hlt);
        mem.write_raw(0x1000, &a.finish()).unwrap();

        let mut b = Cpu::new();
        b.rip = 0x1000;
        let cost = CostModel::DEFAULT;
        // B decodes (and caches) the mov by executing it once; rewind rip.
        b.step(&mut mem, 0, &cost);
        b.rip = 0x1000;
        assert!(b.icache_len() > 0);

        // "Core A" rewrites the mov's immediate to 2 via a raw write.
        let mut patch = Inst::MovImm(Reg::Rbx, 2).encode();
        patch.push(0xf4);
        mem.write_raw(0x1000, &patch).unwrap();

        // B still executes the stale decode…
        b.step(&mut mem, 0, &cost);
        assert_eq!(b.get(Reg::Rbx), 1, "stale icache should win");

        // …until it serializes.
        b.rip = 0x1000;
        b.flush_icache();
        b.step(&mut mem, 0, &cost);
        assert_eq!(b.get(Reg::Rbx), 2);
    }

    #[test]
    fn vsyscall_reads_clock_without_kernel() {
        let mut a = Asm::new();
        a.vsyscall();
        a.inst(Inst::Hlt);
        let (mut cpu, mut mem) = setup(&a.finish());
        let cost = CostModel::DEFAULT;
        let s = cpu.step(&mut mem, 123456, &cost);
        assert_eq!(s.event, StepEvent::Executed);
        assert_eq!(cpu.get(Reg::Rax), 123456);
    }

    #[test]
    fn wrpkru_controls_data_access() {
        let mut a = Asm::new();
        // deny key 1, then try to read a key-1 page
        a.mov_imm(Reg::Rax, 1 << 2); // AD for key 1
        a.wrpkru();
        a.mov_imm(Reg::Rdi, 0x3000);
        a.load(Reg::Rbx, Reg::Rdi, 0);
        let code = a.finish();
        let (mut cpu, mut mem) = setup(&code);
        mem.map(0x3000, 0x1000, Perms::RW, "secret").unwrap();
        mem.set_pkey(0x3000, 0x1000, 1).unwrap();
        let cost = CostModel::DEFAULT;
        cpu.step(&mut mem, 0, &cost);
        cpu.step(&mut mem, 0, &cost);
        cpu.step(&mut mem, 0, &cost);
        let s = cpu.step(&mut mem, 0, &cost);
        match s.event {
            StepEvent::Fault(f) => assert_eq!(f.reason, sim_mem::FaultReason::PkuDenied),
            e => panic!("expected PKU fault, got {e:?}"),
        }
    }

    #[test]
    fn syscall_clobbers_rcx_r11() {
        let mut cpu = Cpu::new();
        cpu.flags = Flags {
            zf: true,
            sf: false,
            cf: true,
            of: false,
        };
        cpu.apply_syscall_clobbers(0xabcd);
        assert_eq!(cpu.get(Reg::Rcx), 0xabcd);
        assert_eq!(cpu.get(Reg::R11), 0b101);
    }
}
