//! Trace cache: hot blocks promoted into linked superblocks.
//!
//! The block engine's per-entry costs — one icache lookup per fetched
//! instruction and one dispatcher round-trip per block — dominate tight
//! guest loops. The trace engine profiles block-entry counts and, past a
//! hotness threshold, records the executed instruction sequence into a
//! [`Trace`]: a decoded superblock replayed without any fetch or icache
//! lookup. A trace whose terminal branch lands on another trace's entry
//! chains into it directly ("linking") without returning to the cold
//! dispatcher.
//!
//! Staleness is governed by the same two-level scheme as the icache
//! (see `cpu.rs`):
//!
//! * While `fresh_gen == Cpu::flush_gen` (no serialization point since
//!   formation), a trace runs after a **single compare** — no page-version
//!   walk at all.
//! * After a serialization point, one `mem_gen` compare plus a walk of the
//!   trace's recorded `(page, version)` pairs either restamps the trace
//!   fresh or unlinks it. The pairs are copied from the constituent
//!   icache entries at *decode* time, never re-read at record time, so a
//!   trace can only validate against the exact bytes its ops were decoded
//!   from (a cross-core write that the icache would surface after a
//!   serialize also kills the trace).
//! * Own-core stores unlink every trace registered on a written page
//!   (page-granular, coarser than the icache's byte-overlap rule — an
//!   over-approximation is safe because cold execution is architecturally
//!   identical) and abort any in-progress recording that touches one.

use sim_isa::Inst;

use crate::fasthash::FastMap;

/// Trace-engine tuning knobs, carried by `EngineConfig` in sim-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParams {
    /// Block-entry count at which a head starts recording a trace.
    pub hot_threshold: u32,
    /// Maximum ops captured into one trace.
    pub max_ops: usize,
    /// Trace-pool capacity; reaching it resets the pool (rare, and cold
    /// execution is always correct, so a reset only costs re-warming).
    pub max_traces: usize,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            hot_threshold: 16,
            max_ops: 256,
            max_traces: 4096,
        }
    }
}

/// One recorded instruction: everything replay needs, no fetch required.
#[derive(Debug, Clone, Copy)]
pub struct TraceOp {
    /// Address the op was fetched from; replay asserts control flow
    /// actually arrived here and side-exits otherwise.
    pub rip: u64,
    pub inst: Inst,
    pub len: u8,
}

/// A formed superblock.
#[derive(Debug, Clone)]
pub struct Trace {
    pub entry: u64,
    pub ops: Vec<TraceOp>,
    /// `(page base, content version)` for every page any op's bytes
    /// touch, copied from the constituent icache entries at decode time.
    pub pages: Vec<(u64, u64)>,
    /// [`sim_mem::AddressSpace::generation`] the ops were decoded under.
    pub mem_gen: u64,
    /// Usable after a single compare while this equals `Cpu::flush_gen`.
    pub fresh_gen: u64,
    /// Cleared by unlinking (store overlap or failed revalidation);
    /// dead traces stay in the pool until the next pool reset.
    pub valid: bool,
    /// Replay dispatches into this trace (self-loop wraps included).
    pub enters: u64,
    /// Instructions retired from inside this trace across all replays.
    pub steps: u64,
    /// Replays that left through a guard or break rather than `Done`.
    pub side_exits: u64,
}

/// In-progress recording; becomes a [`Trace`] on finalize unless aborted.
#[derive(Debug, Clone)]
pub struct TraceRec {
    pub entry: u64,
    pub ops: Vec<TraceOp>,
    pub pages: Vec<(u64, u64)>,
    pub mem_gen: u64,
    /// Set by a serialization point or an overlapping store mid-recording.
    pub aborted: bool,
}

/// Per-core trace cache: heat profile, formed traces, page index, and the
/// (at most one) in-progress recording.
#[derive(Debug, Clone)]
pub struct TraceCache {
    pub params: TraceParams,
    /// Block head → entry count (the hotness profile).
    heat: FastMap<u64, u32>,
    /// Trace entry rip → pool index (only valid traces are indexed).
    by_entry: FastMap<u64, u32>,
    pool: Vec<Trace>,
    /// Page base → pool indices of traces with ops on that page; stale
    /// entries (unlinked traces) are skipped on use and pruned on reset.
    page_index: FastMap<u64, Vec<u32>>,
    pub rec: Option<TraceRec>,
    /// Monomorphic lookup hint: the last `(entry rip, pool index)` a
    /// lookup resolved. Tight loops re-enter the same trace every
    /// iteration, turning the hash lookup into two compares. Never
    /// trusted blindly — the hit test re-checks entry and validity, so
    /// unlinks and pool resets need no hint bookkeeping.
    last: (u64, u32),
}

impl TraceCache {
    pub fn new(params: TraceParams) -> TraceCache {
        TraceCache {
            params,
            heat: FastMap::default(),
            by_entry: FastMap::default(),
            pool: Vec::new(),
            page_index: FastMap::default(),
            rec: None,
            last: (u64::MAX, 0),
        }
    }

    /// Pool index of the valid trace entered at `rip`, if any.
    #[inline]
    pub fn lookup(&mut self, rip: u64) -> Option<u32> {
        let (hint_rip, hint_idx) = self.last;
        if hint_rip == rip {
            if let Some(t) = self.pool.get(hint_idx as usize) {
                if t.valid && t.entry == rip {
                    return Some(hint_idx);
                }
            }
        }
        let idx = *self.by_entry.get(&rip)?;
        if self.pool[idx as usize].valid {
            self.last = (rip, idx);
            Some(idx)
        } else {
            None
        }
    }

    #[inline]
    pub fn get(&self, idx: u32) -> &Trace {
        &self.pool[idx as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> &mut Trace {
        &mut self.pool[idx as usize]
    }

    /// Bumps the heat of block head `rip`; true once it crosses the
    /// recording threshold.
    #[inline]
    pub fn bump_heat(&mut self, rip: u64) -> bool {
        let h = self.heat.entry(rip).or_insert(0);
        *h = h.saturating_add(1);
        *h >= self.params.hot_threshold
    }

    /// Starts recording a trace entered at `rip` under mapping generation
    /// `mem_gen` (no-op if a recording is already in progress).
    pub fn start_recording(&mut self, rip: u64, mem_gen: u64) {
        if self.rec.is_some() {
            return;
        }
        self.rec = Some(TraceRec {
            entry: rip,
            ops: Vec::with_capacity(16),
            pages: Vec::with_capacity(4),
            mem_gen,
            aborted: false,
        });
    }

    /// Unlinks `rip`'s trace (failed revalidation). Clears its heat so it
    /// must re-earn promotion under the new code bytes.
    pub fn unlink_entry(&mut self, rip: u64) {
        if let Some(idx) = self.by_entry.remove(&rip) {
            self.pool[idx as usize].valid = false;
            self.heat.remove(&rip);
            sim_obs::trace_unlink(1);
        }
    }

    /// Unlinks every trace registered on `page` and aborts an in-progress
    /// recording that touches it (own-core store semantics).
    pub fn unlink_page(&mut self, page: u64) {
        if let Some(rec) = &mut self.rec {
            if rec.pages.iter().any(|&(p, _)| p == page) {
                rec.aborted = true;
            }
        }
        let Some(idxs) = self.page_index.remove(&page) else {
            return;
        };
        let mut unlinked = 0u64;
        for idx in idxs {
            let t = &mut self.pool[idx as usize];
            if t.valid {
                t.valid = false;
                self.by_entry.remove(&t.entry);
                self.heat.remove(&t.entry);
                unlinked += 1;
            }
        }
        if unlinked > 0 {
            sim_obs::trace_unlink(unlinked);
        }
    }

    /// Aborts an in-progress recording (serialization point mid-trace).
    #[inline]
    pub fn abort_recording(&mut self) {
        if let Some(rec) = &mut self.rec {
            rec.aborted = true;
        }
    }

    /// Closes the in-progress recording, forming a trace unless it was
    /// aborted or captured nothing.
    pub fn finalize(&mut self, flush_gen: u64) {
        let Some(rec) = self.rec.take() else {
            return;
        };
        if rec.aborted || rec.ops.is_empty() {
            if rec.aborted {
                sim_obs::trace_abort();
            }
            return;
        }
        if self.pool.len() >= self.params.max_traces {
            self.pool.clear();
            self.by_entry = FastMap::default();
            self.page_index = FastMap::default();
            self.heat = FastMap::default();
        }
        let idx = self.pool.len() as u32;
        for &(page, _) in &rec.pages {
            self.page_index.entry(page).or_default().push(idx);
        }
        self.by_entry.insert(rec.entry, idx);
        sim_obs::trace_form(rec.ops.len() as u64);
        self.pool.push(Trace {
            entry: rec.entry,
            ops: rec.ops,
            pages: rec.pages,
            mem_gen: rec.mem_gen,
            fresh_gen: flush_gen,
            valid: true,
            enters: 0,
            steps: 0,
            side_exits: 0,
        });
    }

    /// Per-trace occupancy snapshot over the current pool (dead traces
    /// included while they retain their counters): `(entry rip, op count,
    /// enters, replayed steps, side exits)`, hottest first.
    pub fn stats(&self) -> Vec<TraceStat> {
        let mut out: Vec<TraceStat> = self
            .pool
            .iter()
            .filter(|t| t.enters > 0)
            .map(|t| TraceStat {
                entry: t.entry,
                ops: t.ops.len() as u64,
                enters: t.enters,
                steps: t.steps,
                side_exits: t.side_exits,
            })
            .collect();
        out.sort_by(|a, b| b.steps.cmp(&a.steps).then(a.entry.cmp(&b.entry)));
        out
    }
}

/// One row of [`TraceCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStat {
    pub entry: u64,
    pub ops: u64,
    pub enters: u64,
    pub steps: u64,
    pub side_exits: u64,
}
