//! A minimal multiplicative hasher for the simulator's hot maps.
//!
//! The decoded-instruction cache and the kernel's per-thread accounting
//! maps are keyed by small integers (guest addresses, pid/tid pairs) and
//! sit on the per-instruction / per-syscall hot path. `std`'s default
//! SipHash is DoS-resistant but costs more than the lookups themselves for
//! such keys; none of these maps are attacker-controlled, so a
//! Fibonacci-style multiplicative mix is both sufficient and deterministic
//! (no per-process random seed — map iteration order is stable across
//! runs, which the simulator's determinism guarantees appreciate).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer-keyed maps.
#[derive(Default, Clone)]
pub struct FastHasher(u64);

const SEED: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / φ

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: FNV-1a, then a final mix.
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h.wrapping_mul(SEED);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = (self.0 ^ v).wrapping_mul(SEED);
        self.0 = h ^ (h >> 32);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` with the [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_page_aligned_keys() {
        // Page-aligned guest addresses (low 12 bits zero) must not collide
        // into a few buckets.
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(0x1000 * i, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(0x1000 * i)), Some(&i));
        }
    }
}
