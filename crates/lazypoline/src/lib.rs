//! # lazypoline — faithful reproduction of the SUD + on-the-fly rewriting
//! interposer
//!
//! Jacobs et al.'s lazypoline (DSN'24), as analyzed by the K23 paper: no
//! static disassembly at all. SUD traps the *first* execution of each
//! `syscall`/`sysenter`; the SIGSYS handler emulates the call and rewrites
//! the trapping instruction to `callq *%rax`, so subsequent executions take
//! the zpoline-style trampoline fast path.
//!
//! The design and implementation flaws the paper documents (§4) are
//! **reproduced on purpose** — they are what Table 3 measures:
//!
//! * **P1b** — SUD can be disarmed by anyone calling
//!   `prctl(PR_SET_SYSCALL_USER_DISPATCH, OFF, ...)`; nothing guards it.
//! * **P3b** — the rewriter trusts `si_call_addr` blindly: if a hijacked
//!   control flow executes data (or a partial instruction) that happens to
//!   encode `0f 05`, that memory is rewritten — corrupting it.
//! * **P4a** — no NULL-execution check at the trampoline: stray jumps to
//!   page 0 silently run the handler instead of faulting.
//! * **P5** — the two-byte rewrite is **not atomic** (modeled as the second
//!   byte landing [`Lazypoline::torn_window`] cycles after the first), no
//!   instruction-stream serialization is broadcast to other cores, and page
//!   permissions are neither saved before nor faithfully restored after the
//!   rewrite (the page is left `r-x` regardless of what it was).

use interpose::handler_asm::{emit_sigsys_handler, emit_sud_ctor, SigsysHandlerOpts, SudCtorOpts};
use interpose::{env_with_preload, Interposer};
use sim_isa::Reg;
use sim_kernel::{nr, Kernel, Pid};
use sim_loader::{ImageBuilder, SimElf};
use sim_mem::{Perms, PAGE_SIZE};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Install path of the lazypoline guest library.
pub const LAZYPOLINE_LIB: &str = "/usr/lib/liblazypoline.so";

/// Host-side state of one lazypoline instance.
#[derive(Debug, Default)]
struct LpState {
    /// Sites rewritten so far, per process (the library's bookkeeping lives
    /// in per-process memory; forked children re-discover their own copies).
    rewritten: BTreeSet<(sim_kernel::Pid, u64)>,
    /// Total rewrites performed.
    rewrite_count: u64,
}

/// The lazypoline interposer.
#[derive(Debug, Clone)]
pub struct Lazypoline {
    /// Cycles between the first and second byte of a rewrite becoming
    /// visible — the torn-write window (P5). The default models a drained
    /// store buffer; PoCs widen it to expose the race deterministically.
    pub torn_window: u64,
    state: Rc<RefCell<LpState>>,
}

impl Lazypoline {
    /// A lazypoline with the default (narrow) torn-write window.
    pub fn new() -> Lazypoline {
        Lazypoline {
            torn_window: 40,
            state: Rc::default(),
        }
    }

    /// A lazypoline whose rewrite visibility window is stretched, making the
    /// P5 race reliably observable under the deterministic scheduler.
    pub fn with_torn_window(window: u64) -> Lazypoline {
        Lazypoline {
            torn_window: window,
            ..Lazypoline::new()
        }
    }

    /// Number of on-the-fly rewrites performed so far.
    pub fn rewrite_count(&self) -> u64 {
        self.state.borrow().rewrite_count
    }

    fn build_lib(&self) -> SimElf {
        let mut b = ImageBuilder::new(LAZYPOLINE_LIB);
        b.isolated();
        b.init("lp_ctor");
        b.asm.label("__lib_start");

        // Fast path: rewritten sites call here through the trampoline.
        b.asm.label("lazypoline_handler");
        b.asm.lea_label(Reg::R11, "__lp_selector");
        b.asm.xor_reg(Reg::Rcx, Reg::Rcx);
        b.asm.store_byte(Reg::R11, 0, Reg::Rcx);
        for r in [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9] {
            b.asm.push(r);
        }
        b.asm.label("lp_hook"); // the empty interposition function
        for r in [Reg::R9, Reg::R8, Reg::R10, Reg::Rdx, Reg::Rsi, Reg::Rdi] {
            b.asm.pop(r);
        }
        // Restart the forward on EINTR, spilling the number to the
        // per-thread application stack (rcx/r11 are kernel-clobbered at
        // syscall exit). clone bypasses the spill: its child resumes on a
        // fresh stack that must see the pre-handler layout.
        b.asm.cmp_imm(Reg::Rax, nr::SYS_CLONE as i32);
        b.asm.jz("__lp_forward_raw");
        b.asm.push(Reg::Rax);
        b.asm.label("__lp_forward");
        b.asm.syscall();
        b.asm.mov_imm(Reg::R11, nr::err(nr::EINTR));
        b.asm.cmp_reg(Reg::Rax, Reg::R11);
        b.asm.jnz("__lp_forward_done");
        b.asm.load(Reg::Rax, Reg::Rsp, 0);
        b.asm.jmp("__lp_forward");
        b.asm.label("__lp_forward_done");
        b.asm.add_imm(Reg::Rsp, 8);
        b.asm.label("__lp_restore_selector");
        b.asm.lea_label(Reg::R11, "__lp_selector");
        b.asm.mov_imm(Reg::Rcx, nr::SYSCALL_DISPATCH_FILTER_BLOCK as u64);
        b.asm.store_byte(Reg::R11, 0, Reg::Rcx);
        b.asm.ret();
        b.asm.label("__lp_forward_raw");
        b.asm.syscall();
        b.asm.jmp("__lp_restore_selector");

        // Rewrite thunk invoked from the SIGSYS handler with
        // rdi = si_call_addr, rsi = syscall nr.
        b.hostcall_fn("__host_lazypoline_rewrite");

        // Slow path: first execution of a site traps here via SUD.
        emit_sigsys_handler(
            &mut b,
            &SigsysHandlerOpts {
                selector_label: "__lp_selector".into(),
                handler_label: "lp_sigsys_handler".into(),
                pre_call: Some("__host_lazypoline_rewrite".into()),
                no_selector_toggle: false,
                forward_label: "__lp_sud_forward".into(),
            },
        );

        b.hostcall_fn("__host_lazypoline_init");
        emit_sud_ctor(
            &mut b,
            &SudCtorOpts {
                ctor_label: "lp_ctor".into(),
                handler_label: "lp_sigsys_handler".into(),
                selector_label: "__lp_selector".into(),
                allowlist: Some(("__lib_start".into(), 0x10_0000)),
                initial_selector: nr::SYSCALL_DISPATCH_FILTER_BLOCK,
                init_hostcall: Some("__host_lazypoline_init".into()),
            },
        );
        b.data_object("__lp_selector", &[nr::SYSCALL_DISPATCH_FILTER_ALLOW]);
        b.finish()
    }
}

impl Default for Lazypoline {
    fn default() -> Self {
        Lazypoline::new()
    }
}

/// Registers lazypoline in the [`interpose::registry`].
pub fn register() {
    interpose::register("lazypoline", || Box::new(Lazypoline::new()));
}

impl Interposer for Lazypoline {
    fn name(&self) -> &'static str {
        "lazypoline"
    }

    fn install(&self, k: &mut Kernel) {
        self.build_lib().install(&mut k.vfs);
        sim_obs::register_region_path(LAZYPOLINE_LIB, &self.label());
        let state = self.state.clone();
        k.register_hostcall("__host_lazypoline_init", move |k, pid, _tid| {
            let _ = &state;
            let handler =
                k.process(pid).expect("proc").symbols["liblazypoline.so:lazypoline_handler"];
            zpoline::install_trampoline(k, pid, handler, "[lazypoline-trampoline]");
            // P4a: *no* NULL-execution check is installed.
            k.mark_interposer_live(pid);
            interpose::register_handler_span(k, pid, LAZYPOLINE_LIB, "lazypoline");
        });
        let state2 = self.state.clone();
        let window = self.torn_window;
        k.register_hostcall("__host_lazypoline_rewrite", move |k, pid, tid| {
            let site = k
                .cpu_mut(pid, tid)
                .map(|c| c.get(Reg::Rdi))
                .unwrap_or_default();
            let mut st = state2.borrow_mut();
            if !st.rewritten.insert((pid, site)) {
                return; // already rewritten (another thread beat us)
            }
            st.rewrite_count += 1;
            drop(st);
            flawed_rewrite(k, pid, site, window);
        });
    }

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        *self.state.borrow_mut() = LpState::default();
        let env = env_with_preload(env, LAZYPOLINE_LIB);
        k.spawn(path, argv, &env, None)
    }

    fn attribution_path(&self) -> Option<String> {
        Some(LAZYPOLINE_LIB.to_string())
    }

    fn forward_symbols(&self) -> Vec<String> {
        vec![
            "liblazypoline.so:__lp_forward".to_string(),
            "liblazypoline.so:__lp_sud_forward".to_string(),
        ]
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        // Hybrid: unrewritten sites trap through SUD's SIGSYS, rewritten
        // ones call straight into the handler library. The vDSO is left
        // alone (and SUD never sees its calls), so it stays a shadow.
        sim_kernel::AuditSpec {
            mechanism: self.name().to_string(),
            handler_regions: vec!["liblazypoline.so".to_string()],
            via_sigsys: true,
            ..sim_kernel::AuditSpec::default()
        }
    }
}

/// lazypoline's rewrite, with the paper's P5 flaws intact:
///
/// 1. no validation of the target (P3b — the caller trusts `si_call_addr`);
/// 2. the two bytes are written non-atomically: `0xff` lands now, `0xd0`
///    lands `window` cycles later;
/// 3. no cross-core instruction-stream serialization is requested;
/// 4. the page is made writable for the patch and left `r-x` afterwards —
///    the original permissions are never saved (breaks `rwx` JIT pages and
///    execute-only mappings).
fn flawed_rewrite(k: &mut Kernel, pid: Pid, site: u64, window: u64) {
    let page = site & !(PAGE_SIZE - 1);
    {
        let p = k.process_mut(pid).expect("proc");
        // Make writable without saving what it was…
        if p.space.protect(page, PAGE_SIZE, Perms::RWX).is_err() {
            return;
        }
        // …write the first byte now…
        let _ = p.space.write_raw(site, &[sim_isa::CALL_RAX_BYTES[0]]);
    }
    // …the second becomes visible only after the window (torn state until
    // then)…
    k.defer_write_u8(pid, site + 1, sim_isa::CALL_RAX_BYTES[1], window);
    // …and "restore" to the assumed r-x.
    let p = k.process_mut(pid).expect("proc");
    let _ = p.space.protect(page, PAGE_SIZE, Perms::RX);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_loader::{boot_kernel, LIBC_PATH};

    fn stress_app(n: u64) -> SimElf {
        let mut b = ImageBuilder::new("/usr/bin/stress");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rcx, n);
        b.asm.label("loop");
        b.asm.push(Reg::Rcx);
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.syscall();
        b.asm.pop(Reg::Rcx);
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("loop");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.finish()
    }

    #[test]
    fn first_call_traps_then_fast_path() {
        let mut k = boot_kernel();
        let lp = Lazypoline::new();
        lp.install(&mut k);
        stress_app(50).install(&mut k.vfs);
        let pid = lp.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        let exit = k.run(10_000_000_000);
        assert_eq!(exit, sim_kernel::RunExit::AllExited);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "output: {}", p.output_string());
        // The loop site trapped once (plus a handful of app/libc sites) and
        // was rewritten; the remaining 49 iterations took the fast path.
        assert!(p.stats.sigsys_count < 20, "sigsys {}", p.stats.sigsys_count);
        assert!(lp.rewrite_count() >= 1);
        assert!(
            lp.interposed_count(&k, pid) >= 50,
            "interposed {}",
            lp.interposed_count(&k, pid)
        );
    }

    #[test]
    fn rewriting_discovers_only_executed_sites() {
        // Unlike zpoline there is no scan: sites never executed are never
        // rewritten.
        let mut k = boot_kernel();
        let lp = Lazypoline::new();
        lp.install(&mut k);
        stress_app(5).install(&mut k.vfs);
        let pid = lp.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        k.run(10_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // Far fewer rewrites than zpoline's full-image scan would produce
        // (libc-sim alone has 40+ wrapper sites).
        assert!(lp.rewrite_count() < 15, "rewrites {}", lp.rewrite_count());
    }

    #[test]
    fn p1b_prctl_disables_interposition_silently() {
        // The P1b PoC shape: the app turns SUD off; subsequent syscalls are
        // NOT interposed and nothing aborts.
        let mut b = ImageBuilder::new("/usr/bin/bypass");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        // prctl(PR_SET_SYSCALL_USER_DISPATCH, OFF, 0, 0, 0) — issued raw.
        b.asm.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
        b.asm.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_OFF);
        b.asm.mov_imm(Reg::Rdx, 0);
        b.asm.mov_imm(Reg::R10, 0);
        b.asm.mov_imm(Reg::R8, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_PRCTL);
        b.asm.syscall();
        // 10 now-uninterposed syscalls from a fresh site.
        b.asm.mov_imm(Reg::Rcx, 10);
        b.asm.label("loop");
        b.asm.push(Reg::Rcx);
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.label("bypass_site");
        b.asm.syscall();
        b.asm.pop(Reg::Rcx);
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("loop");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        let lp = Lazypoline::new();
        lp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = lp.spawn(&mut k, "/usr/bin/bypass", &[], &[]).unwrap();
        k.run(10_000_000_000);
        let p = k.process(pid).unwrap();
        // Process lived, and the bypass site's syscalls ran directly from
        // the app image — never via the handler.
        assert_eq!(p.exit_status, Some(0));
        let site = p.symbols["bypass:bypass_site"];
        assert_eq!(p.stats.syscalls_at_site(site), 10);
    }

    #[test]
    fn p5_torn_write_crashes_concurrent_thread() {
        // Two threads; the child hammers a syscall site in a tight loop:
        // its first execution triggers the (non-atomic) rewrite. With a
        // stretched visibility window the next fetch sees `ff 05` — a torn,
        // invalid encoding — and the process dies.
        let mut b = ImageBuilder::new("/usr/bin/mt");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        // Allocate a stack for the child: mmap(0, 64k, RW).
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.mov_imm(Reg::Rsi, 0x10000);
        b.asm.mov_imm(Reg::Rdx, 3);
        b.asm.mov_imm(Reg::R10, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_MMAP);
        b.asm.syscall();
        b.asm.mov_reg(Reg::Rsi, Reg::Rax);
        b.asm.add_imm(Reg::Rsi, 0xfff0);
        // clone(0, child_stack)
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_CLONE);
        b.asm.syscall();
        b.asm.test_reg(Reg::Rax, Reg::Rax);
        b.asm.jz("child");
        // Parent: spin long enough for the child to die, then exit.
        b.asm.mov_imm(Reg::Rcx, 5000);
        b.asm.label("spin");
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("spin");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        // Child: hammer the shared syscall site forever.
        b.asm.label("child");
        b.asm.label("hammer");
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.label("shared_site");
        b.asm.syscall();
        b.asm.jmp("hammer");

        let mut k = boot_kernel();
        let lp = Lazypoline::with_torn_window(200_000);
        lp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = lp.spawn(&mut k, "/usr/bin/mt", &[], &[]).unwrap();
        k.run(50_000_000_000);
        let p = k.process(pid).unwrap();
        // The torn instruction killed the process (fatal signal exit).
        assert!(
            p.exit_status.map(|s| s >= 128).unwrap_or(false),
            "expected a crash from the torn rewrite, got {:?}",
            p.exit_status
        );
    }

    #[test]
    fn p5_permissions_not_restored() {
        // An RWX JIT page containing a syscall: after lazypoline's rewrite
        // the page silently becomes r-x, so the JIT's next code write faults.
        let mut b = ImageBuilder::new("/usr/bin/jitw");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        // mmap(0, 4096, RWX)
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.mov_imm(Reg::Rsi, 4096);
        b.asm.mov_imm(Reg::Rdx, 7);
        b.asm.mov_imm(Reg::R10, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_MMAP);
        b.asm.syscall();
        b.asm.mov_reg(Reg::Rbx, Reg::Rax);
        // Write `mov rax,500; syscall; ret` from immediates, call it.
        let blob: [u8; 16] = {
            let mut v = sim_isa::Inst::MovImm(Reg::Rax, nr::SYS_NONEXISTENT).encode();
            v.extend_from_slice(&sim_isa::SYSCALL_BYTES);
            v.push(0xc3);
            v.resize(16, 0x90);
            v.try_into().unwrap()
        };
        b.asm
            .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[..8].try_into().unwrap()));
        b.asm.store(Reg::Rbx, 0, Reg::Rdx);
        b.asm
            .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[8..].try_into().unwrap()));
        b.asm.store(Reg::Rbx, 8, Reg::Rdx);
        b.asm.call_reg(Reg::Rbx);
        // JIT "recompiles": writing the page again must still work (RWX)…
        b.asm.store(Reg::Rbx, 0, Reg::Rdx);
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        let lp = Lazypoline::new();
        lp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = lp.spawn(&mut k, "/usr/bin/jitw", &[], &[]).unwrap();
        k.run(10_000_000_000);
        let p = k.process(pid).unwrap();
        // …but lazypoline left it r-x: the recompile write faults and the
        // process dies with SIGSEGV.
        assert_eq!(p.exit_status, Some(128 + nr::SIGSEGV as i64));
    }
}
