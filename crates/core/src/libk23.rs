//! The `libK23` guest library (paper §5.2–§5.3) and its host-side
//! initialization.
//!
//! Fast path: sites pre-validated by the offline phase are rewritten —
//! once, atomically, with page permissions saved and restored — to
//! `callq *%rax`, landing in the trampoline and then [`K23_LIB`]'s handler.
//! The handler exploits the kernel's `rcx`/`r11` clobbering to avoid any
//! register saves (§6.2.1), intercepts `prctl`/`execve` for the P1 defenses,
//! and forwards the call.
//!
//! Fallback: any site the offline phase missed raises SIGSYS via SUD and is
//! emulated by the fallback handler — unlike lazypoline, **nothing is ever
//! rewritten at runtime** (addressing P3b and P5). The NULL-execution check
//! (`-ultra`) probes a bounded hash set of the logged sites instead of a
//! 16 TiB bitmap (addressing P4a + P4b).

use crate::log::SiteLog;
use crate::online::K23Stats;
use crate::Variant;
use interpose::handler_asm::{emit_sigsys_handler, SigsysHandlerOpts};
use sim_isa::{Cond, Reg};
use sim_kernel::{nr, Kernel, Pid};
use sim_loader::{ImageBuilder, SimElf};
use std::cell::RefCell;
use std::rc::Rc;

/// Install path of the libK23 guest library.
pub const K23_LIB: &str = "/usr/lib/libk23.so";
/// Fibonacci-hash multiplier for the site hash set.
pub const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// log2 of the hash-set slot count (1 Ki slots ≈ 8 KiB — versus the
/// bitmap's 16 TiB reservation; the P4b fix).
pub const TABLE_BITS: u32 = 10;

/// Builds the libK23 image for `variant`.
pub fn build_libk23(variant: Variant) -> SimElf {
    let mut b = ImageBuilder::new(K23_LIB);
    b.isolated();
    b.init("k23_ctor");
    b.asm.label("__lib_start");

    // ---- fast-path handler (entered from the trampoline) -------------------
    b.asm.label("k23_handler");
    if variant.null_check() {
        // NULL-execution check: probe the hash set of pre-validated sites.
        b.asm.load(Reg::R11, Reg::Rsp, 0);
        b.asm.sub_imm(Reg::R11, 2); // the rewritten site address
        b.asm.mov_imm(Reg::Rcx, GOLDEN);
        b.asm.imul_reg(Reg::Rcx, Reg::R11);
        b.asm.shr_imm(Reg::Rcx, 64 - TABLE_BITS as u8);
        b.asm.shl_imm(Reg::Rcx, 3);
        b.asm.push(Reg::Rbx);
        b.asm.lea_label(Reg::Rbx, "__k23_table");
        b.asm.add_reg(Reg::Rbx, Reg::Rcx);
        b.asm.label("__k23_probe");
        b.asm.load(Reg::Rcx, Reg::Rbx, 0);
        b.asm.cmp_reg(Reg::Rcx, Reg::R11);
        b.asm.jz("__k23_hit");
        b.asm.cmp_imm(Reg::Rcx, 0);
        b.asm.jz("__k23_abort_pop"); // empty slot: unknown caller
        b.asm.add_imm(Reg::Rbx, 8);
        b.asm.jmp("__k23_probe");
        b.asm.label("__k23_hit");
        b.asm.pop(Reg::Rbx);
    }
    // P1 defenses: intercept prctl (SUD-disable attempts) and execve
    // (ptracer re-attachment + LD_PRELOAD enforcement).
    b.asm.cmp_imm(Reg::Rax, nr::SYS_PRCTL as i32);
    b.asm.jcc(Cond::E, "k23_prctl_guard");
    b.asm.cmp_imm(Reg::Rax, nr::SYS_EXECVE as i32);
    b.asm.jcc(Cond::E, "k23_execve_guard");
    b.asm.label("k23_do_syscall");
    // Errnos — including an injected EINTR on the forwarded call — are
    // passed through unchanged: POSIX already obliges the application to
    // handle them, and rewriting the result here would make the interposed
    // run observably different from a native one under the same fault plan.
    if variant.stack_switch() {
        // clone must not run the switch epilogue in the child (the child
        // starts right after the forwarded syscall with a fresh stack and no
        // rbx spill) — the clone special-casing every in-process interposer
        // needs (cf. lazypoline's clone handling).
        b.asm.cmp_imm(Reg::Rax, nr::SYS_CLONE as i32);
        b.asm.jcc(Cond::E, "__k23_forward_noswitch");
        // Switch to the dedicated interposer stack (§5.3). The old stack
        // pointer is parked in a callee-saved register whose original value
        // is spilled to the *per-thread* application stack — no shared
        // mutable state, so the switch is thread-safe. Nothing is pushed on
        // the dedicated stack itself.
        b.asm.push(Reg::Rbx);
        b.asm.mov_reg(Reg::Rbx, Reg::Rsp);
        b.asm.lea_label(Reg::Rsp, "__k23_stack_top");
    }
    // The empty interposition function, then forward. The handler's own
    // syscall is inside the SUD allowlist, so no selector toggling is
    // needed — and rcx/r11 were already dead. This is the trampoline
    // optimization of §6.2.1.
    b.asm.label("__k23_forward");
    b.asm.syscall();
    if variant.stack_switch() {
        b.asm.mov_reg(Reg::Rsp, Reg::Rbx);
        b.asm.pop(Reg::Rbx);
        b.asm.ret();
        // Raw clone path: child resumes right after this syscall on its
        // fresh stack and immediately returns to the app.
        b.asm.label("__k23_forward_noswitch");
        b.asm.syscall();
    }
    b.asm.ret();

    b.asm.label("k23_prctl_guard");
    b.asm.call("__host_k23_prctl_guard"); // aborts the process if hostile
    b.asm.jmp("k23_do_syscall");
    b.asm.label("k23_execve_guard");
    b.asm.call("__host_k23_execve_reattach");
    b.asm.jmp("k23_do_syscall");
    if variant.null_check() {
        b.asm.label("__k23_abort_pop");
        b.asm.pop(Reg::Rbx);
        b.asm.mov_imm(Reg::Rdi, 134); // 128 + SIGABRT
        b.asm.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        b.asm.syscall();
    }

    b.hostcall_fn("__host_k23_prctl_guard");
    b.hostcall_fn("__host_k23_execve_reattach");
    b.hostcall_fn("__host_k23_init");
    b.hostcall_fn("__host_k23_sud_guard");

    // ---- SUD fallback handler (sites the offline phase missed) -------------
    emit_sigsys_handler(
        &mut b,
        &SigsysHandlerOpts {
            selector_label: "__k23_selector".into(),
            handler_label: "k23_sud_handler".into(),
            // The guard inspects the trapped call (prctl/execve defenses
            // apply on the fallback path too). It never rewrites anything.
            pre_call: Some("__host_k23_sud_guard".into()),
            no_selector_toggle: false,
            forward_label: "__k23_sud_forward".into(),
        },
    );

    // ---- constructor --------------------------------------------------------
    b.asm.label("k23_ctor");
    // Host side: trampoline + selective rewrite + hash-set fill.
    b.asm.call("__host_k23_init");
    // rt_sigaction(SIGSYS, fallback handler), masked against nested
    // delivery while the handler emulates a call.
    b.asm.mov_imm(Reg::Rdi, nr::SIGSYS | nr::SIGACT_MASK_ALL);
    b.asm.lea_label(Reg::Rsi, "k23_sud_handler");
    b.asm.mov_imm(Reg::Rax, nr::SYS_RT_SIGACTION);
    b.asm.syscall();
    // prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, lib_start, 1 MiB, selector)
    b.asm.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
    b.asm.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_ON);
    b.asm.lea_label(Reg::Rdx, "__lib_start");
    b.asm.mov_imm(Reg::R10, 0x10_0000);
    b.asm.lea_label(Reg::R8, "__k23_selector");
    b.asm.mov_imm(Reg::Rax, nr::SYS_PRCTL);
    b.asm.syscall();
    // selector = BLOCK: interposition is live from here.
    b.asm.lea_label(Reg::R11, "__k23_selector");
    b.asm.mov_imm(Reg::Rcx, nr::SYSCALL_DISPATCH_FILTER_BLOCK as u64);
    b.asm.store_byte(Reg::R11, 0, Reg::Rcx);
    // Fake syscall 600: request the ptracer's state handoff into
    // __k23_state (the kernel routes unknown numbers to the tracer, §5.3).
    b.asm.lea_label(Reg::Rdi, "__k23_state");
    b.asm.mov_imm(Reg::Rax, nr::SYS_K23_HANDOFF);
    b.asm.label("__k23_fake1");
    b.asm.syscall();
    // Fake syscall 601: tell the ptracer to detach.
    b.asm.mov_imm(Reg::Rax, nr::SYS_K23_DETACH);
    b.asm.label("__k23_fake2");
    b.asm.syscall();
    b.asm.ret();

    // ---- data ----------------------------------------------------------------
    b.data_object("__k23_selector", &[nr::SYSCALL_DISPATCH_FILTER_ALLOW]);
    b.data_object("__k23_state", &[0u8; 64]);
    if variant.null_check() {
        b.data_object("__k23_table", &vec![0u8; 8 << TABLE_BITS]);
    }
    if variant.stack_switch() {
        b.data_object("__k23_stack_area", &[0u8; 4096]);
        b.data_object("__k23_stack_top", &[0u8; 16]);
    }
    b.finish()
}

/// Host side of `__host_k23_init`: trampoline installation, selective
/// rewriting of offline-validated sites, and hash-set population.
pub fn k23_init(k: &mut Kernel, pid: Pid, variant: Variant, stats: &Rc<RefCell<K23Stats>>) {
    let (handler, exe) = {
        let p = k.process(pid).expect("proc");
        (p.symbols["libk23.so:k23_handler"], p.exe.clone())
    };
    zpoline::install_trampoline(k, pid, handler, "[k23-trampoline]");

    // Resolve offline-logged (region, offset) pairs against the current
    // layout and validate each before rewriting: the region must still be
    // executable and non-writable and the bytes must actually encode
    // syscall/sysenter. Only these pre-validated sites are ever rewritten
    // (addressing P3a/P3b).
    let log = SiteLog::load(&k.vfs, &exe).unwrap_or_default();
    let mut resolved: Vec<u64> = Vec::new();
    {
        let p = k.process_mut(pid).expect("proc");
        for e in &log.entries {
            let Some(base) = p.lib_bases.get(&e.region).copied() else {
                continue;
            };
            let addr = base + e.offset;
            let valid_region = p
                .space
                .mapping_at(addr)
                .map(|m| m.perms.executable() && !m.perms.writable() && m.name == e.region)
                .unwrap_or(false);
            if !valid_region {
                continue;
            }
            let mut bytes = [0u8; 2];
            if p.space.read_raw(addr, &mut bytes).is_err() {
                continue;
            }
            if bytes != sim_isa::SYSCALL_BYTES && bytes != sim_isa::SYSENTER_BYTES {
                continue;
            }
            resolved.push(addr);
        }
    }
    for &site in &resolved {
        // One-time, atomic, permission-preserving rewrite (addressing P5).
        zpoline::rewrite_site_properly(k, pid, site);
    }

    if variant.null_check() {
        let table = k.process(pid).expect("proc").symbols["libk23.so:__k23_table"];
        let slots = 1u64 << TABLE_BITS;
        let p = k.process_mut(pid).expect("proc");
        for &site in &resolved {
            let mut slot = GOLDEN.wrapping_mul(site) >> (64 - TABLE_BITS);
            loop {
                assert!(slot < slots, "hash set over-full; raise TABLE_BITS");
                let addr = table + slot * 8;
                let mut cur = [0u8; 8];
                p.space.read_raw(addr, &mut cur).expect("table readable");
                if u64::from_le_bytes(cur) == 0 {
                    p.space
                        .write_raw(addr, &site.to_le_bytes())
                        .expect("table writable");
                    break;
                }
                slot += 1;
            }
        }
    }

    let mut s = stats.borrow_mut();
    s.rewritten = resolved;
    s.table_bytes = if variant.null_check() { 8 << TABLE_BITS } else { 0 };
    drop(s);
    k.mark_interposer_live(pid);
}
