//! K23's offline phase (paper §5.1, Figure 2).
//!
//! `libLogger` — an SUD-based interposition library — is preloaded into the
//! target, which runs in a controlled environment with representative
//! inputs. Every trapped syscall's *(region, offset)* pair is recorded,
//! restricted to expected executable, non-writable regions (so dynamically
//! generated code can never contribute entries). Repeating runs with
//! different inputs unions the logs. When the session finishes, the log is
//! written and the log directory is made immutable for the program's
//! lifetime (§5.3).

use crate::log::{SiteEntry, SiteLog, LOG_DIR};
use crate::ptracer::PreloadGuard;
use interpose::handler_asm::{emit_sigsys_handler, emit_sud_ctor, SigsysHandlerOpts, SudCtorOpts};
use interpose::env_with_preload;
use sim_kernel::{nr, Kernel, Pid, RunExit, TraceOpts};
use sim_loader::{ImageBuilder, SimElf};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Install path of the offline logger library.
pub const LOGGER_LIB: &str = "/usr/lib/liblogger.so";

/// Builds the `libLogger` guest library: an SUD interposer whose handler
/// logs the trapping site (via a hostcall) before emulating the call.
pub fn build_logger_lib() -> SimElf {
    let mut b = ImageBuilder::new(LOGGER_LIB);
    b.isolated();
    b.init("logger_ctor");
    b.asm.label("__lib_start");
    b.hostcall_fn("__host_k23_log_site");
    emit_sigsys_handler(
        &mut b,
        &SigsysHandlerOpts {
            selector_label: "__logger_selector".into(),
            handler_label: "logger_sigsys_handler".into(),
            pre_call: Some("__host_k23_log_site".into()),
            no_selector_toggle: false,
            forward_label: "__logger_forward".into(),
        },
    );
    b.hostcall_fn("__host_k23_logger_init");
    emit_sud_ctor(
        &mut b,
        &SudCtorOpts {
            ctor_label: "logger_ctor".into(),
            handler_label: "logger_sigsys_handler".into(),
            selector_label: "__logger_selector".into(),
            allowlist: Some(("__lib_start".into(), 0x10_0000)),
            initial_selector: nr::SYSCALL_DISPATCH_FILTER_BLOCK,
            init_hostcall: Some("__host_k23_logger_init".into()),
        },
    );
    b.data_object("__logger_selector", &[nr::SYSCALL_DISPATCH_FILTER_ALLOW]);
    b.finish()
}

/// An offline-phase session: run the target (possibly several times with
/// different inputs), then persist the unioned log.
#[derive(Debug)]
pub struct OfflineSession {
    app: String,
    sites: Rc<RefCell<BTreeSet<SiteEntry>>>,
}

impl OfflineSession {
    /// Prepares a session for `app`: installs libLogger and registers its
    /// hostcalls on `k`.
    pub fn new(k: &mut Kernel, app: &str) -> OfflineSession {
        build_logger_lib().install(&mut k.vfs);
        let sites: Rc<RefCell<BTreeSet<SiteEntry>>> = Rc::default();
        let sink = sites.clone();
        k.register_hostcall("__host_k23_log_site", move |k, pid, tid| {
            let Some(cpu) = k.cpu_mut(pid, tid) else {
                return;
            };
            let addr = cpu.get(sim_isa::Reg::Rdi); // si_call_addr
            let Some(p) = k.process(pid) else {
                return;
            };
            let Some(m) = p.space.mapping_at(addr) else {
                return;
            };
            // Only expected executable, non-writable regions are recorded —
            // never writable or anonymous memory, so JIT/dynamic code can't
            // poison the log (§5.1).
            let expected = m.perms.executable()
                && !m.perms.writable()
                && m.name.starts_with('/')
                && m.name != LOGGER_LIB;
            if expected {
                sink.borrow_mut().insert(SiteEntry {
                    region: m.name.clone(),
                    offset: addr - m.start,
                });
            }
        });
        k.register_hostcall("__host_k23_logger_init", |k, pid, _tid| {
            k.mark_interposer_live(pid);
        });
        OfflineSession {
            app: app.to_string(),
            sites,
        }
    }

    /// Spawns the target under libLogger without running it — used by
    /// server workloads where load generators must be spawned alongside.
    ///
    /// # Errors
    ///
    /// Returns `-errno` if the image cannot be loaded.
    pub fn spawn(&self, k: &mut Kernel, argv: &[String], env: &[String]) -> Result<Pid, i64> {
        let env = env_with_preload(env, LOGGER_LIB);
        let guard = Rc::new(RefCell::new(PreloadGuard {
            lib: LOGGER_LIB.to_string(),
        }));
        k.spawn(
            &self.app,
            argv,
            &env,
            Some((
                guard,
                TraceOpts {
                    trace_syscalls: true,
                    trace_exec: true,
                    trace_fork: true,
                    disable_vdso: false,
                },
            )),
        )
    }

    /// Runs the target once under libLogger with the given inputs. The
    /// injector guard keeps libLogger preloaded across `execve` even if the
    /// workload clears the environment.
    ///
    /// # Errors
    ///
    /// Returns `-errno` if the image cannot be loaded.
    pub fn run_once(
        &self,
        k: &mut Kernel,
        argv: &[String],
        env: &[String],
        budget: u64,
    ) -> Result<(Pid, RunExit), i64> {
        let pid = self.spawn(k, argv, env)?;
        let exit = k.run(budget);
        Ok((pid, exit))
    }

    /// Unique sites observed so far.
    pub fn site_count(&self) -> usize {
        self.sites.borrow().len()
    }

    /// Persists the log and seals the log directory (immutable), returning
    /// the log.
    pub fn finish(self, k: &mut Kernel) -> SiteLog {
        let mut log = SiteLog::new(&self.app);
        log.entries = self.sites.borrow().clone();
        k.vfs.mkdir_p(LOG_DIR).expect("log dir creatable");
        let _ = k.vfs.set_immutable(LOG_DIR, false);
        log.save(&mut k.vfs).expect("log dir writable before sealing");
        k.vfs
            .set_immutable(LOG_DIR, true)
            .expect("log dir exists");
        log
    }
}
