//! The K23 *site log* — the offline phase's persisted set of syscall
//! sites (paper §5.1, Figure 3). This is **not** a logging/telemetry
//! facility: for runtime tracing and metrics of the simulation itself
//! (event streams, counters, per-interposer latency) see the `sim-obs`
//! crate.
//!
//! Each entry is a *(region, offset)* pair: the mapping that contained a
//! trapping `syscall`/`sysenter` instruction and the instruction's offset
//! within it. Offsets within a region are stable across runs even under
//! ASLR, so the online phase can map entries back to virtual addresses.

use sim_kernel::Vfs;
use std::collections::BTreeSet;

/// Directory holding offline logs; marked immutable once the offline phase
/// completes (§5.3).
pub const LOG_DIR: &str = "/k23/logs";

/// One logged site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteEntry {
    /// Mapping name, e.g. `/usr/lib/libc-sim.so.6`.
    pub region: String,
    /// Byte offset of the instruction within the mapping.
    pub offset: u64,
}

/// The offline log for one application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteLog {
    /// Application path the log was collected for.
    pub app: String,
    /// Unique logged sites.
    pub entries: BTreeSet<SiteEntry>,
}

impl SiteLog {
    /// A fresh, empty log for `app`.
    pub fn new(app: &str) -> SiteLog {
        SiteLog {
            app: app.to_string(),
            entries: BTreeSet::new(),
        }
    }

    /// Canonical VFS path of the log for `app`.
    pub fn path_for(app: &str) -> String {
        let base = app.rsplit('/').next().unwrap_or(app);
        format!("{LOG_DIR}/{base}.log")
    }

    /// Number of unique sites (the Table 2 metric).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Saves the log into the VFS.
    ///
    /// # Errors
    ///
    /// Propagates VFS errors (e.g. `-EPERM` if the log dir is immutable).
    pub fn save(&self, vfs: &mut Vfs) -> Result<(), u64> {
        let json = sjson::Value::object(vec![
            ("app", self.app.as_str().into()),
            (
                "entries",
                sjson::Value::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            sjson::Value::object(vec![
                                ("region", e.region.as_str().into()),
                                ("offset", e.offset.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let data = json.to_string_pretty().into_bytes();
        vfs.write_file(&Self::path_for(&self.app), &data)
    }

    /// Loads the log for `app`, if present and well-formed.
    ///
    /// The stored `app` field must match the requested `app`: a log file
    /// collected for a different application (e.g. after a basename
    /// collision under [`LOG_DIR`]) is rejected rather than silently
    /// applied, since its sites would rewrite the wrong addresses.
    pub fn load(vfs: &Vfs, app: &str) -> Option<SiteLog> {
        let data = vfs.read_file(&Self::path_for(app)).ok()?;
        let v = sjson::parse(data).ok()?;
        let logged_app = v.get("app")?.as_str()?;
        if logged_app != app {
            return None;
        }
        let entries = v
            .get("entries")?
            .as_array()?
            .iter()
            .map(|e| {
                Some(SiteEntry {
                    region: e.get("region")?.as_str()?.to_string(),
                    offset: e.get("offset")?.as_u64()?,
                })
            })
            .collect::<Option<BTreeSet<SiteEntry>>>()?;
        Some(SiteLog {
            app: logged_app.to_string(),
            entries,
        })
    }

    /// Renders the Figure 3 textual form: `region,offset` per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!("{},{}\n", e.region, e.offset));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let mut log = SiteLog::new("/usr/bin/ls-sim");
        log.entries.insert(SiteEntry {
            region: "/usr/lib/libc-sim.so.6".into(),
            offset: 1153562,
        });
        log.entries.insert(SiteEntry {
            region: "/usr/lib/libc-sim.so.6".into(),
            offset: 943685,
        });
        let mut vfs = Vfs::new();
        log.save(&mut vfs).unwrap();
        let back = SiteLog::load(&vfs, "/usr/bin/ls-sim").unwrap();
        assert_eq!(back, log);
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn entries_deduplicate() {
        let mut log = SiteLog::new("x");
        for _ in 0..5 {
            log.entries.insert(SiteEntry {
                region: "libc".into(),
                offset: 7,
            });
        }
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn render_matches_figure3_shape() {
        let mut log = SiteLog::new("ls");
        log.entries.insert(SiteEntry {
            region: "/usr/lib/libc-sim.so.6".into(),
            offset: 11536,
        });
        let r = log.render();
        assert_eq!(r, "/usr/lib/libc-sim.so.6,11536\n");
    }

    #[test]
    fn load_rejects_mismatched_app() {
        // Two apps with the same basename collide on the same log path;
        // the log records the full path, so the second load must fail.
        let mut vfs = Vfs::new();
        let mut log = SiteLog::new("/usr/bin/ls-sim");
        log.entries.insert(SiteEntry {
            region: "libc".into(),
            offset: 42,
        });
        log.save(&mut vfs).unwrap();
        assert!(SiteLog::load(&vfs, "/usr/bin/ls-sim").is_some());
        assert_eq!(
            SiteLog::path_for("/opt/other/ls-sim"),
            SiteLog::path_for("/usr/bin/ls-sim")
        );
        assert!(
            SiteLog::load(&vfs, "/opt/other/ls-sim").is_none(),
            "log for a different app must be rejected"
        );
    }

    #[test]
    fn immutable_dir_blocks_save() {
        let mut vfs = Vfs::new();
        let log = SiteLog::new("app");
        log.save(&mut vfs).unwrap();
        vfs.set_immutable(LOG_DIR, true).unwrap();
        assert!(log.save(&mut vfs).is_err());
    }
}
