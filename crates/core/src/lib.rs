//! # k23 — pitfall-resilient system call interposition
//!
//! The reproduction of the paper's primary contribution: **K23**, a
//! plug-and-play interposer combining an *offline phase* (an SUD-based
//! logger identifying legitimate `syscall`/`sysenter` sites under
//! representative inputs) with an *online phase* (a startup `ptracer` for
//! exhaustive coverage from the first instruction, a single selective
//! zpoline-style rewrite of the pre-validated sites, and an SUD fallback
//! for everything else).
//!
//! How each pitfall is addressed (Table 3):
//!
//! | Pitfall | Mechanism |
//! |---|---|
//! | P1a interposition bypass via env | the ptracer rewrites `execve` environments to force `LD_PRELOAD` |
//! | P1b SUD disable via `prctl` | both handler paths intercept `prctl` and abort the process |
//! | P2a overlooked sites | SUD fallback interposes anything unrewritten |
//! | P2b startup + vDSO calls | ptracer from instruction zero; vDSO disabled at exec |
//! | P3a/P3b misidentification | rewriting limited to offline-validated sites, re-verified byte-for-byte at init; never rewrites at runtime |
//! | P4a NULL-execution | `-ultra` validates callers against a hash set of known sites |
//! | P4b bitmap memory | the hash set is bounded by the offline log (KiBs, not TiBs) |
//! | P5 runtime rewriting races | one rewriting step, before app threads exist; atomic writes; permissions saved/restored |
//!
//! ## Quickstart
//!
//! ```
//! use k23::{K23, Variant, OfflineSession};
//! use interpose::Interposer;
//!
//! // Boot a simulated machine and install a tiny guest app.
//! let mut kernel = sim_loader::boot_kernel();
//! let mut app = sim_loader::ImageBuilder::new("/usr/bin/demo");
//! app.entry("main").needs(sim_loader::LIBC_PATH);
//! app.asm.label("main");
//! app.asm.mov_imm(sim_isa::Reg::Rax, 0);
//! app.asm.ret();
//! app.finish().install(&mut kernel.vfs);
//!
//! // Offline phase: log the app's syscall sites.
//! let session = OfflineSession::new(&mut kernel, "/usr/bin/demo");
//! session.run_once(&mut kernel, &[], &[], 1_000_000_000).unwrap();
//! let log = session.finish(&mut kernel);
//!
//! // Online phase: run under K23.
//! let k23 = K23::new(Variant::Ultra);
//! k23.install(&mut kernel);
//! let pid = k23.spawn(&mut kernel, "/usr/bin/demo", &[], &[]).unwrap();
//! kernel.run(10_000_000_000);
//! assert_eq!(kernel.process(pid).unwrap().exit_status, Some(0));
//! assert_eq!(k23.stats().rewritten.len(), log.len());
//! ```

pub mod libk23;
pub mod log;
pub mod offline;
pub mod online;
pub mod ptracer;

pub use libk23::{build_libk23, GOLDEN, K23_LIB, TABLE_BITS};
pub use log::{SiteEntry, SiteLog, LOG_DIR};
pub use offline::{build_logger_lib, OfflineSession, LOGGER_LIB};
pub use online::{register, K23Stats, K23};
pub use ptracer::{force_preload_in_execve, K23Ptracer, PreloadGuard, PtracerState};

/// K23's feature variants (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No NULL-execution check, no stack switch — the high-performance
    /// configuration.
    Default,
    /// Adds the NULL-execution check (hash-set caller validation).
    Ultra,
    /// Adds the NULL-execution check *and* the dedicated-stack switch — the
    /// security/debugging configuration.
    UltraPlus,
}

impl Variant {
    /// All variants, in Table 4 order.
    pub const ALL: [Variant; 3] = [Variant::Default, Variant::Ultra, Variant::UltraPlus];

    /// Whether the NULL-execution check is enabled.
    pub fn null_check(self) -> bool {
        !matches!(self, Variant::Default)
    }

    /// Whether the dedicated-stack switch is enabled.
    pub fn stack_switch(self) -> bool {
        matches!(self, Variant::UltraPlus)
    }

    /// The paper's configuration label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Default => "K23-default",
            Variant::Ultra => "K23-ultra",
            Variant::UltraPlus => "K23-ultra+",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interpose::Interposer;
    use sim_isa::Reg;
    use sim_kernel::nr;
    use sim_loader::{boot_kernel, ImageBuilder, SimElf, LIBC_PATH};

    fn stress_app(n: u64) -> SimElf {
        let mut b = ImageBuilder::new("/usr/bin/stress");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rcx, n);
        b.asm.label("loop");
        b.asm.push(Reg::Rcx);
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.label("stress_site");
        b.asm.syscall();
        b.asm.pop(Reg::Rcx);
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("loop");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.finish()
    }

    /// Runs the offline phase for `stress`, returning the kernel (with the
    /// sealed log) for online use.
    fn offline_then_kernel(n: u64) -> sim_kernel::Kernel {
        let mut k = boot_kernel();
        stress_app(n).install(&mut k.vfs);
        let session = OfflineSession::new(&mut k, "/usr/bin/stress");
        let (_pid, exit) = session.run_once(&mut k, &[], &[], 50_000_000_000).unwrap();
        assert_eq!(exit, sim_kernel::RunExit::AllExited);
        assert!(session.site_count() > 0);
        session.finish(&mut k);
        k
    }

    #[test]
    fn offline_phase_logs_stable_sites() {
        let mut k = boot_kernel();
        stress_app(10).install(&mut k.vfs);
        let session = OfflineSession::new(&mut k, "/usr/bin/stress");
        session.run_once(&mut k, &[], &[], 50_000_000_000).unwrap();
        let log = session.finish(&mut k);
        // The loop site (app image) and a couple of stub/libc sites.
        assert!(
            log.entries
                .iter()
                .any(|e| e.region == "/usr/bin/stress"),
            "log: {:?}",
            log.entries
        );
        // Log dir is sealed.
        assert!(k
            .vfs
            .write_file("/k23/logs/evil.log", b"x")
            .is_err());
        // Entries are (region, offset) — no absolute addresses.
        for e in &log.entries {
            assert!(e.offset < 0x10_0000, "offset looks absolute: {e:?}");
        }
    }

    #[test]
    fn online_rewrites_logged_sites_and_interposes_everything() {
        for variant in Variant::ALL {
            let mut k = offline_then_kernel(20);
            let k23 = K23::new(variant);
            k23.install(&mut k);
            let pid = k23.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
            let exit = k.run(100_000_000_000);
            assert_eq!(exit, sim_kernel::RunExit::AllExited, "{variant:?}");
            let p = k.process(pid).unwrap();
            assert_eq!(p.exit_status, Some(0), "{variant:?}: {}", p.output_string());
            // The single rewriting step hit the offline-logged sites.
            assert!(!k23.stats().rewritten.is_empty(), "{variant:?}");
            // Every executed syscall was interposed: by the ptracer during
            // startup, by the trampoline fast path, or by the SUD fallback.
            assert_eq!(
                k23.interposed_count(&k, pid),
                p.stats.syscalls,
                "{variant:?}: via {:?}",
                p.stats.syscalls_via
            );
            // And the ptracer really detached after the handoff.
            assert!(!k.is_traced(pid), "{variant:?}");
            assert_eq!(k23.handoffs(), 1, "{variant:?}");
        }
    }

    #[test]
    fn fast_path_dominates_after_rewrite() {
        let mut k = offline_then_kernel(200);
        let k23 = K23::new(Variant::Default);
        k23.install(&mut k);
        let pid = k23.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        let fast = p.stats.syscalls_at_site(p.symbols["libk23.so:__k23_forward"]);
        // All 200 loop syscalls took the rewritten fast path, not SIGSYS.
        assert!(fast >= 200, "fast={fast} via={:?}", p.stats.syscalls_via);
        assert!(
            p.stats.sigsys_count < 20,
            "fallback should be rare: {}",
            p.stats.sigsys_count
        );
    }

    #[test]
    fn unlogged_sites_fall_back_to_sud() {
        // Run offline on the plain stress app, but execute online with an
        // *additional* code path (argv-dependent) whose site was never
        // logged: it must still be interposed (via SIGSYS), addressing P2a.
        let mut b = ImageBuilder::new("/usr/bin/twopath");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        // if argc > 1 use the "cold" site
        b.asm.cmp_imm(Reg::Rdi, 1);
        b.asm.jcc(sim_isa::Cond::G, "cold");
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.label("hot_site");
        b.asm.syscall();
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.asm.label("cold");
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.label("cold_site");
        b.asm.syscall();
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        b.finish().install(&mut k.vfs);
        let session = OfflineSession::new(&mut k, "/usr/bin/twopath");
        // Offline run with argc == 1: only the hot path is exercised.
        session
            .run_once(&mut k, &["twopath".into()], &[], 50_000_000_000)
            .unwrap();
        session.finish(&mut k);

        let k23 = K23::new(Variant::Ultra);
        k23.install(&mut k);
        // Online run takes the cold path.
        let pid = k23
            .spawn(
                &mut k,
                "/usr/bin/twopath",
                &["twopath".into(), "-x".into()],
                &[],
            )
            .unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // The cold site itself was never rewritten…
        let cold = p.symbols["twopath:cold_site"];
        assert!(!k23.stats().rewritten.contains(&cold));
        // …and never executed natively: zero syscalls from that address;
        // it trapped into the SUD fallback instead.
        assert_eq!(p.stats.syscalls_at_site(cold), 0);
        let sud = p.stats.syscalls_at_site(p.symbols["libk23.so:__k23_sud_forward"]);
        assert!(sud >= 1, "via: {:?}", p.stats.syscalls_via);
    }

    #[test]
    fn prctl_disable_attempt_aborts() {
        // P1b defense: the Listing 2 attack kills the process instead of
        // silently disabling interposition.
        let mut b = ImageBuilder::new("/usr/bin/bypass");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
        b.asm.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_OFF);
        b.asm.mov_imm(Reg::Rdx, 0);
        b.asm.mov_imm(Reg::R10, 0);
        b.asm.mov_imm(Reg::R8, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_PRCTL);
        b.asm.syscall();
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        b.finish().install(&mut k.vfs);
        let k23 = K23::new(Variant::Default);
        k23.install(&mut k);
        let pid = k23.spawn(&mut k, "/usr/bin/bypass", &[], &[]).unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(134), "must abort, not bypass");
        assert!(k23.stats().prctl_blocks >= 1);
    }

    #[test]
    fn ultra_aborts_stray_trampoline_entry() {
        // P4a defense: a NULL function-pointer call aborts under -ultra.
        let mut b = ImageBuilder::new("/usr/bin/nullcall");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.call_reg(Reg::Rax);
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        b.finish().install(&mut k.vfs);
        let k23 = K23::new(Variant::Ultra);
        k23.install(&mut k);
        let pid = k23.spawn(&mut k, "/usr/bin/nullcall", &[], &[]).unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(134));
        // The P4b contrast: KiBs of hash set, not TiBs of bitmap.
        assert!(k23.stats().table_bytes <= 64 * 1024);
    }

    #[test]
    fn startup_syscalls_are_interposed_and_handed_off() {
        // P2b: the ptracer sees every startup syscall, and the count is
        // delivered into libK23's guest state via the fake syscall.
        let mut k = offline_then_kernel(5);
        let k23 = K23::new(Variant::Default);
        k23.install(&mut k);
        let pid = k23.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // The stress app links only libc, so its startup footprint is
        // smaller than ls-class binaries (which exceed 100, see the apps
        // crate); it is still substantial.
        assert!(
            k23.startup_syscalls() > 50,
            "ptracer saw {} startup syscalls",
            k23.startup_syscalls()
        );
        // The handed-off count is visible in libK23's state area.
        let state_addr = p.symbols["libk23.so:__k23_state"];
        let mut buf = [0u8; 8];
        let p = k.process_mut(pid).unwrap();
        p.space.read_raw(state_addr, &mut buf).unwrap();
        let handed = u64::from_le_bytes(buf);
        assert!(handed > 50, "handoff value {handed}");
    }

    #[test]
    fn execve_with_cleared_env_still_interposed() {
        // P1a: the child execs with an EMPTY environment (Listing 1); K23's
        // guards force LD_PRELOAD back and re-attach the ptracer, so the
        // new image is fully interposed.
        let mut child = ImageBuilder::new("/usr/bin/childapp");
        child.entry("main");
        child.needs(LIBC_PATH);
        child.asm.label("main");
        child.asm.mov_imm(Reg::Rcx, 5);
        child.asm.label("loop");
        child.asm.push(Reg::Rcx);
        child.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        child.asm.label("child_site");
        child.asm.syscall();
        child.asm.pop(Reg::Rcx);
        child.asm.sub_imm(Reg::Rcx, 1);
        child.asm.jnz("loop");
        child.asm.mov_imm(Reg::Rax, 0);
        child.asm.ret();

        let mut parent = ImageBuilder::new("/usr/bin/parentapp");
        parent.entry("main");
        parent.needs(LIBC_PATH);
        parent.asm.label("main");
        // execve("/usr/bin/childapp", NULL, NULL) — environment cleared.
        parent.asm.lea_label(Reg::Rdi, "path");
        parent.asm.mov_imm(Reg::Rsi, 0);
        parent.asm.mov_imm(Reg::Rdx, 0);
        parent.asm.mov_imm(Reg::Rax, nr::SYS_EXECVE);
        parent.asm.syscall();
        parent.asm.mov_imm(Reg::Rax, 1); // unreachable on success
        parent.asm.ret();
        parent.data_object("path", b"/usr/bin/childapp\0");

        let mut k = boot_kernel();
        child.finish().install(&mut k.vfs);
        parent.finish().install(&mut k.vfs);
        let k23 = K23::new(Variant::Default);
        k23.install(&mut k);
        let pid = k23.spawn(&mut k, "/usr/bin/parentapp", &[], &[]).unwrap();
        k.run(100_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "out: {}", p.output_string());
        assert_eq!(p.exe, "/usr/bin/childapp");
        assert!(k23.stats().execve_reattach >= 1);
        // The new image's syscalls were all interposed (the child_site
        // never executed natively — it SUD-trapped or was startup-traced).
        let site = p.symbols["childapp:child_site"];
        assert_eq!(p.stats.syscalls_at_site(site), 0);
    }
}
