//! The K23 interposer: online-phase wiring (paper §5.2, Figure 4).

use crate::libk23::{build_libk23, k23_init};
use crate::ptracer::{force_preload_in_execve, K23Ptracer, PtracerState};
use crate::{Variant, K23_LIB};
use interpose::{env_with_preload, Interposer};
use sim_isa::Reg;
use sim_kernel::signal::{uc_reg, FRAME_SIZE};
use sim_kernel::{nr, Kernel, Pid, TraceOpts};
use std::cell::RefCell;
use std::rc::Rc;

/// Host-observable state of a K23 instance.
#[derive(Debug, Default, Clone)]
pub struct K23Stats {
    /// Sites rewritten during the single rewriting step.
    pub rewritten: Vec<u64>,
    /// Guest bytes used by the hash set (0 for `-default`) — contrast with
    /// zpoline's 16 TiB bitmap reservation (P4b).
    pub table_bytes: u64,
    /// Hostile `prctl` attempts blocked (P1b).
    pub prctl_blocks: u64,
    /// `execve` calls intercepted for re-attachment (P1a).
    pub execve_reattach: u64,
}

/// The K23 interposer (all variants).
#[derive(Debug, Clone)]
pub struct K23 {
    /// The feature variant (Table 4).
    pub variant: Variant,
    stats: Rc<RefCell<K23Stats>>,
    ptracer_state: Rc<RefCell<PtracerState>>,
}

impl K23 {
    /// A K23 instance of the given variant.
    pub fn new(variant: Variant) -> K23 {
        K23 {
            variant,
            stats: Rc::default(),
            ptracer_state: Rc::default(),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> K23Stats {
        self.stats.borrow().clone()
    }

    /// Syscalls the startup ptracer interposed before detaching (P2b
    /// coverage).
    pub fn startup_syscalls(&self) -> u64 {
        self.ptracer_state.borrow().startup_syscalls
    }

    /// Number of state handoffs performed via fake syscalls.
    pub fn handoffs(&self) -> u64 {
        self.ptracer_state.borrow().handoffs
    }

    fn trace_opts() -> TraceOpts {
        TraceOpts {
            trace_syscalls: true,
            trace_exec: true,
            trace_fork: true,
            // Force vDSO users onto real syscall instructions (§5.2).
            disable_vdso: true,
        }
    }
}

/// Registers all three K23 variants in the [`interpose::registry`].
pub fn register() {
    interpose::register("k23", || Box::new(K23::new(crate::Variant::Default)));
    interpose::register("k23-ultra", || Box::new(K23::new(crate::Variant::Ultra)));
    interpose::register("k23-ultra+", || Box::new(K23::new(crate::Variant::UltraPlus)));
}

impl Interposer for K23 {
    fn name(&self) -> &'static str {
        match self.variant {
            crate::Variant::Default => "k23",
            crate::Variant::Ultra => "k23-ultra",
            crate::Variant::UltraPlus => "k23-ultra+",
        }
    }

    fn label(&self) -> String {
        self.variant.label().to_string()
    }

    fn install(&self, k: &mut Kernel) {
        build_libk23(self.variant).install(&mut k.vfs);
        sim_obs::register_region_path(K23_LIB, &self.label());

        let variant = self.variant;
        let stats = self.stats.clone();
        k.register_hostcall("__host_k23_init", move |k, pid, _tid| {
            k23_init(k, pid, variant, &stats);
            interpose::register_handler_span(k, pid, K23_LIB, variant.label());
        });

        // Fast-path prctl guard: abort on any attempt to reconfigure SUD
        // from application code (P1b).
        let stats = self.stats.clone();
        k.register_hostcall("__host_k23_prctl_guard", move |k, pid, tid| {
            let hostile = k
                .cpu_mut(pid, tid)
                .map(|c| c.get(Reg::Rdi) == nr::PR_SET_SYSCALL_USER_DISPATCH)
                .unwrap_or(false);
            if hostile {
                stats.borrow_mut().prctl_blocks += 1;
                k.kill_process(pid, 134);
            }
        });

        // Fast-path execve guard: force LD_PRELOAD and re-attach the
        // ptracer so the whole online phase repeats in the new image
        // (P1a + §5.3).
        let stats = self.stats.clone();
        let pstate = self.ptracer_state.clone();
        k.register_hostcall("__host_k23_execve_reattach", move |k, pid, tid| {
            stats.borrow_mut().execve_reattach += 1;
            let envp = k
                .cpu_mut(pid, tid)
                .map(|c| c.get(Reg::Rdx))
                .unwrap_or_default();
            force_preload_in_execve(k, pid, tid, envp, K23_LIB);
            let tracer = Rc::new(RefCell::new(K23Ptracer::with_state(pstate.clone())));
            k.attach_tracer(pid, tracer, K23::trace_opts());
        });

        // Fallback-path guard: same defenses, reading the trapped call's
        // registers from the signal frame.
        let stats = self.stats.clone();
        let pstate = self.ptracer_state.clone();
        k.register_hostcall("__host_k23_sud_guard", move |k, pid, tid| {
            let (call_nr, frame) = {
                let Some(cpu) = k.cpu_mut(pid, tid) else {
                    return;
                };
                let call_nr = cpu.get(Reg::Rsi); // pre_call: rsi = trapped nr
                let Some(p) = k.process(pid) else { return };
                let Some(t) = p.thread(tid) else { return };
                let Some(&frame) = t.sig_frames.last() else {
                    return;
                };
                (call_nr, frame)
            };
            let saved_reg = |k: &mut Kernel, r: Reg| -> u64 {
                let p = k.process_mut(pid).expect("proc");
                let mut b = [0u8; 8];
                let _ = p.space.read_raw(frame + uc_reg(r), &mut b);
                u64::from_le_bytes(b)
            };
            let _ = FRAME_SIZE;
            match call_nr {
                nr::SYS_PRCTL
                    if saved_reg(k, Reg::Rdi) == nr::PR_SET_SYSCALL_USER_DISPATCH => {
                        stats.borrow_mut().prctl_blocks += 1;
                        k.kill_process(pid, 134);
                    }
                nr::SYS_EXECVE => {
                    stats.borrow_mut().execve_reattach += 1;
                    let envp = saved_reg(k, Reg::Rdx);
                    // The fallback handler re-issues the syscall from the
                    // *saved* registers, so the fix goes into the frame.
                    if let Some(new_envp) =
                        crate::ptracer::build_fixed_envp(k, pid, tid, envp, K23_LIB)
                    {
                        let p = k.process_mut(pid).expect("proc");
                        let _ = p
                            .space
                            .write_raw(frame + uc_reg(Reg::Rdx), &new_envp.to_le_bytes());
                    }
                    let tracer = Rc::new(RefCell::new(K23Ptracer::with_state(pstate.clone())));
                    k.attach_tracer(pid, tracer, K23::trace_opts());
                }
                _ => {}
            }
        });
    }

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        let env = env_with_preload(env, K23_LIB);
        let tracer = Rc::new(RefCell::new(K23Ptracer::with_state(
            self.ptracer_state.clone(),
        )));
        k.spawn(path, argv, &env, Some((tracer, K23::trace_opts())))
    }

    fn attribution_path(&self) -> Option<String> {
        Some(K23_LIB.to_string())
    }

    fn forward_symbols(&self) -> Vec<String> {
        vec![
            "libk23.so:__k23_forward".to_string(),
            "libk23.so:__k23_sud_forward".to_string(),
            // The fake control syscalls are interposer-internal: 600 is
            // absorbed by the ptracer; 601 executes once as the detach
            // signal. Both sites belong to the mechanism itself, as does
            // the fallback handler's rt_sigreturn.
            "libk23.so:__k23_fake1".to_string(),
            "libk23.so:__k23_fake2".to_string(),
            "libk23.so:__k23_sud_forward_sigreturn".to_string(),
            // ultra+ only (absent symbols are skipped when counting).
            "libk23.so:__k23_forward_noswitch".to_string(),
        ]
    }

    /// Only the sites that re-issue *application* syscalls: the fake
    /// control syscalls (600/601) and the fallback handler's internal
    /// rt_sigreturn belong to the mechanism and must not enter a
    /// composed stack's chain.
    fn chain_symbols(&self) -> Vec<String> {
        vec![
            "libk23.so:__k23_forward".to_string(),
            "libk23.so:__k23_sud_forward".to_string(),
            "libk23.so:__k23_forward_noswitch".to_string(),
        ]
    }

    /// K23's interposed count also includes the syscalls its startup
    /// ptracer covered — the component other interposers simply lack.
    fn interposed_count(&self, k: &Kernel, pid: Pid) -> u64 {
        interpose::count_at_symbols(k, pid, &self.forward_symbols())
            + self.ptracer_state.borrow().startup_syscalls
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        // All three channels at once: the startup ptracer (which also
        // disables the vDSO and follows fork/exec), the SUD fallback
        // handler, and the handler library's selective-rewrite re-issues.
        // This is why K23 tops the coverage table (paper Table 3).
        sim_kernel::AuditSpec {
            mechanism: self.name().to_string(),
            handler_regions: vec!["libk23.so".to_string()],
            via_tracer: true,
            via_sigsys: true,
            covers_vdso: true,
        }
    }
}
