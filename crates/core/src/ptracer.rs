//! K23's online-phase ptracer (paper §5.2, §5.3) and the LD_PRELOAD
//! enforcement logic shared with the offline phase's injector guard.
//!
//! The ptracer interposes **every** syscall from the program's first
//! instruction until libK23 announces itself — the only way to cover
//! startup and loader syscalls without OS modifications (addressing P2b) —
//! and rewrites `execve` environments so the interposition library can
//! never be silently dropped (addressing P1a). It then hands its
//! accumulated state to libK23 through *fake syscalls* (numbers 600/601)
//! and detaches.

use crate::K23_LIB;
use interpose::env_with_preload;
use sim_isa::Reg;
use sim_kernel::{nr, Kernel, Pid, Stop, Tid, Tracer, TracerAction};
use std::cell::RefCell;
use std::rc::Rc;

/// Builds a corrected environment block for a pending `execve` such that
/// `LD_PRELOAD` contains `lib`, placed in scratch space far below the
/// tracee's stack pointer (the standard cross-process fixup a real ptracer
/// performs with `process_vm_writev`).
///
/// Returns the guest address of the new `envp` array, or `None` when the
/// existing environment already contains the library (or on error). The
/// caller decides where to apply it: the live `rdx` (fast path / ptracer
/// stop) or the saved `rdx` slot of a signal frame (SUD fallback path).
pub fn build_fixed_envp(k: &mut Kernel, pid: Pid, tid: Tid, envp: u64, lib: &str) -> Option<u64> {
    // Read the existing environment.
    let mut env: Vec<String> = Vec::new();
    if envp != 0 {
        for i in 0..256 {
            let Ok(b) = k.tr_read(pid, envp + i * 8, 8) else {
                break;
            };
            let ptr = u64::from_le_bytes(b.try_into().expect("8 bytes"));
            if ptr == 0 {
                break;
            }
            let Some(s) = k.tr_read_cstr(pid, ptr) else {
                break;
            };
            env.push(s);
        }
    }
    let fixed = env_with_preload(&env, lib);
    if fixed == env && envp != 0 {
        return None; // already present
    }

    // Write the corrected block below the tracee's stack.
    let cpu = k.tr_getregs(pid, tid)?;
    let mut cursor = (cpu.get(Reg::Rsp) - 0x8000) & !7;
    let mut ptrs = Vec::new();
    for s in &fixed {
        let mut bytes = s.clone().into_bytes();
        bytes.push(0);
        cursor -= bytes.len() as u64;
        k.tr_write(pid, cursor, &bytes).ok()?;
        ptrs.push(cursor);
    }
    cursor &= !7;
    cursor -= 8;
    k.tr_write(pid, cursor, &0u64.to_le_bytes()).ok()?;
    for p in ptrs.iter().rev() {
        cursor -= 8;
        k.tr_write(pid, cursor, &p.to_le_bytes()).ok()?;
    }
    Some(cursor)
}

/// [`build_fixed_envp`] + repointing the *live* `rdx` at the new array
/// (for ptracer syscall-enter stops and the fast-path guard).
pub fn force_preload_in_execve(k: &mut Kernel, pid: Pid, tid: Tid, envp: u64, lib: &str) {
    if let Some(new_envp) = build_fixed_envp(k, pid, tid, envp, lib) {
        if let Some(mut cpu) = k.tr_getregs(pid, tid) {
            cpu.set(Reg::Rdx, new_envp);
            k.tr_setregs(pid, tid, cpu);
        }
    }
}

/// Shared state of a [`K23Ptracer`], observable by the host side of K23.
#[derive(Debug, Default)]
pub struct PtracerState {
    /// Syscalls interposed during startup (before detach) — handed off to
    /// libK23 via the fake syscall.
    pub startup_syscalls: u64,
    /// Fake handoff syscalls served.
    pub handoffs: u64,
    /// Times the tracer had to force `LD_PRELOAD` back into an `execve`.
    pub preload_fixes: u64,
    /// Fake syscalls rejected because they did not originate from libK23
    /// (the §5.3 security check).
    pub rejected_fakes: u64,
}

/// The online-phase ptracer.
#[derive(Debug, Default)]
pub struct K23Ptracer {
    /// Observable state.
    pub state: Rc<RefCell<PtracerState>>,
}

impl K23Ptracer {
    /// A fresh ptracer sharing `state`.
    pub fn with_state(state: Rc<RefCell<PtracerState>>) -> K23Ptracer {
        K23Ptracer { state }
    }

    fn site_in_libk23(k: &Kernel, pid: Pid, site: u64) -> bool {
        k.process(pid)
            .and_then(|p| p.space.mapping_at(site))
            .map(|m| m.name == K23_LIB)
            .unwrap_or(false)
    }
}

impl Tracer for K23Ptracer {
    fn on_stop(&mut self, k: &mut Kernel, pid: Pid, tid: Tid, stop: &Stop) -> TracerAction {
        match stop {
            Stop::SyscallEnter { nr: n, args, site } => match *n {
                nr::SYS_EXECVE => {
                    // P1a defense: the new image must preload libK23.
                    self.state.borrow_mut().preload_fixes += 1;
                    force_preload_in_execve(k, pid, tid, args[2], K23_LIB);
                    self.state.borrow_mut().startup_syscalls += 1;
                    TracerAction::Continue
                }
                nr::SYS_K23_HANDOFF => {
                    // §5.3 security check: fake syscalls must originate from
                    // libK23 itself, not from compromised code.
                    if !Self::site_in_libk23(k, pid, *site) {
                        self.state.borrow_mut().rejected_fakes += 1;
                        return TracerAction::Kill;
                    }
                    let st = self.state.borrow().startup_syscalls;
                    // process_vm_writev-style transfer into libK23's state
                    // area (address passed in the fake syscall's first arg).
                    let _ = k.tr_write(pid, args[0], &st.to_le_bytes());
                    self.state.borrow_mut().handoffs += 1;
                    TracerAction::SkipSyscall { ret: 0 }
                }
                nr::SYS_K23_DETACH => {
                    if !Self::site_in_libk23(k, pid, *site) {
                        self.state.borrow_mut().rejected_fakes += 1;
                        return TracerAction::Kill;
                    }
                    TracerAction::Detach
                }
                _ => {
                    // The empty interposition function: observe and forward.
                    self.state.borrow_mut().startup_syscalls += 1;
                    TracerAction::Continue
                }
            },
            _ => TracerAction::Continue,
        }
    }
}

/// A minimal injector guard for the *offline* phase: its sole job is to keep
/// the logger library in `LD_PRELOAD` across `execve` (paper §5.3 — "purely
/// to maximize coverage, not for security enforcement").
#[derive(Debug)]
pub struct PreloadGuard {
    /// Library to keep injected.
    pub lib: String,
}

impl Tracer for PreloadGuard {
    fn on_stop(&mut self, k: &mut Kernel, pid: Pid, tid: Tid, stop: &Stop) -> TracerAction {
        if let Stop::SyscallEnter {
            nr: n, args, ..
        } = stop
        {
            if *n == nr::SYS_EXECVE {
                let lib = self.lib.clone();
                force_preload_in_execve(k, pid, tid, args[2], &lib);
            }
        }
        TracerAction::Continue
    }
}
