//! Workload harness: spawns servers + clients under an interposer and
//! measures throughput, replicating the paper's macrobenchmark methodology
//! (§6.2.2): clients and servers share the machine and talk over loopback;
//! the benchmarked metric is requests per (simulated) time, with client
//! count matched to worker count.

use crate::servers::{EPOLL_PORT, LIGHTTPD_PORT, NGINX_PORT, POLL_PORT, SCALE_MAX_CONNS};
use interpose::Interposer;
use sim_kernel::{Kernel, Pid, RunExit, ThreadState};

/// Marker file loadgen-sim creates once every connection is open; the
/// scale harness times the load phase from its appearance.
pub const CONNECTED_MARKER: &str = "/data/connected";

/// Where loadgen-sim mirrors received bytes when recording is on.
pub const RX_LOG: &str = "/data/rx.log";

/// Where the load generator stamps its load-phase start/end timespecs.
pub const STATS_LOG: &str = "/data/loadgen.stats";

/// A client/server macrobenchmark specification (one Table 6 row).
#[derive(Debug, Clone)]
pub struct MacroSpec {
    /// Row label, e.g. `nginx (1 worker, 0 KB)`.
    pub name: String,
    /// Server binary path.
    pub server: &'static str,
    /// Client binary path.
    pub client: &'static str,
    /// Server `/etc/<name>.conf` contents.
    pub server_cfg: Vec<u8>,
    /// Client config contents.
    pub client_cfg: Vec<u8>,
    /// Client config path.
    pub client_cfg_path: &'static str,
    /// Server config path.
    pub server_cfg_path: &'static str,
    /// Number of client processes (matched to workers, as in the paper).
    pub clients: usize,
    /// Total requests all clients perform (for the throughput numerator).
    pub total_requests: u64,
}

/// Result of one macro run.
#[derive(Debug, Clone, Copy)]
pub struct MacroResult {
    /// Requests completed.
    pub requests: u64,
    /// Global cycles consumed during the load phase.
    pub cycles: u64,
}

impl MacroResult {
    /// Requests per billion cycles (a req/s analogue at ~1 GHz-of-cycles;
    /// only ratios matter).
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / self.cycles as f64 * 1e9
    }
}

#[allow(clippy::too_many_arguments)] // a row constructor mirroring Table 6 columns
fn web_spec(
    server: &'static str,
    cfg_path: &'static str,
    port: u64,
    workers: u8,
    resp_kb: u8,
    server_work: u8,
    client_work: u8,
    reqs_per_client: u64,
) -> MacroSpec {
    let resp64 = ((128 + resp_kb as u64 * 4096) / 64) as u8;
    MacroSpec {
        name: format!(
            "{} ({} worker{}, {} KB)",
            server.rsplit('/').next().unwrap_or(server).trim_end_matches("-sim"),
            workers,
            if workers == 1 { "" } else { "s" },
            resp_kb
        ),
        server,
        client: "/usr/bin/wrk-sim",
        server_cfg: vec![workers, resp_kb, server_work, 0],
        client_cfg: vec![
            (reqs_per_client & 0xff) as u8,
            (reqs_per_client >> 8) as u8,
            client_work,
            resp64,
            (port & 0xff) as u8,
            (port >> 8) as u8,
        ],
        client_cfg_path: "/etc/wrk-sim.conf",
        server_cfg_path: cfg_path,
        clients: workers as usize,
        total_requests: reqs_per_client * workers as u64,
    }
}

fn redis_spec(io_threads: u8, work: u8, batches_per_client: u64, clients: usize) -> MacroSpec {
    let batch: u8 = 12;
    let share8 = (batch as u64 * 64 / 6 / 8) as u8; // exact sixth of a batch
    MacroSpec {
        name: format!(
            "redis ({} I/O thread{})",
            io_threads,
            if io_threads == 1 { "" } else { "s" }
        ),
        server: "/usr/bin/redis-sim",
        client: "/usr/bin/redis-bench-sim",
        server_cfg: vec![io_threads, batch, work, share8],
        client_cfg: vec![
            (batches_per_client & 0xff) as u8,
            (batches_per_client >> 8) as u8,
            1,
            batch,
        ],
        client_cfg_path: "/etc/redis-bench-sim.conf",
        server_cfg_path: "/etc/redis-sim.conf",
        clients,
        total_requests: batches_per_client * batch as u64 * clients as u64,
    }
}

/// The ten client/server rows of Table 6 (sqlite is a completion workload,
/// see [`sqlite_cfg`] + [`run_sqlite`]). `scale` divides request counts for
/// quick runs.
pub fn table6_specs(scale: u64) -> Vec<MacroSpec> {
    let r = |n: u64| (n / scale).max(8);
    vec![
        web_spec("/usr/bin/nginx-sim", "/etc/nginx-sim.conf", NGINX_PORT, 1, 0, 4, 1, r(1500)),
        web_spec("/usr/bin/nginx-sim", "/etc/nginx-sim.conf", NGINX_PORT, 1, 4, 4, 1, r(1200)),
        web_spec("/usr/bin/nginx-sim", "/etc/nginx-sim.conf", NGINX_PORT, 10, 0, 4, 1, r(300)),
        web_spec("/usr/bin/nginx-sim", "/etc/nginx-sim.conf", NGINX_PORT, 10, 4, 4, 1, r(300)),
        web_spec("/usr/bin/lighttpd-sim", "/etc/lighttpd-sim.conf", LIGHTTPD_PORT, 1, 0, 12, 1, r(1500)),
        web_spec("/usr/bin/lighttpd-sim", "/etc/lighttpd-sim.conf", LIGHTTPD_PORT, 1, 4, 12, 1, r(1200)),
        web_spec("/usr/bin/lighttpd-sim", "/etc/lighttpd-sim.conf", LIGHTTPD_PORT, 10, 0, 12, 1, r(300)),
        web_spec("/usr/bin/lighttpd-sim", "/etc/lighttpd-sim.conf", LIGHTTPD_PORT, 10, 4, 12, 1, r(300)),
        redis_spec(1, 19, r(200), 1),
        redis_spec(6, 1, r(200), 1),
    ]
}

/// A connection-scale row: `conns` concurrent connections to the epoll
/// (`epoll = true`) or busy-polling server variant, `requests` synchronous
/// requests issued round-robin over the first `active` connections.
/// `record` mirrors every received byte to [`RX_LOG`] for byte-stream
/// comparisons. Run these with [`run_scale`], not [`run_macro`]: the
/// polling server never blocks, so the kernel never reports Deadlock.
#[allow(clippy::too_many_arguments)] // mirrors the simscale matrix axes
pub fn scale_spec(
    epoll: bool,
    workers: u8,
    conns: u32,
    active: u32,
    requests: u32,
    resp64: u8,
    server_work: u8,
    record: bool,
) -> MacroSpec {
    let conns = conns.clamp(1, SCALE_MAX_CONNS as u32);
    let active = active.clamp(1, conns);
    let requests = requests.max(1).min(u16::MAX as u32);
    let (server, cfg_path, port, label) = if epoll {
        ("/usr/bin/epollsrv-sim", "/etc/epollsrv-sim.conf", EPOLL_PORT, "epollsrv")
    } else {
        ("/usr/bin/pollsrv-sim", "/etc/pollsrv-sim.conf", POLL_PORT, "pollsrv")
    };
    MacroSpec {
        name: format!("{label} (c={conns})"),
        server,
        client: "/usr/bin/loadgen-sim",
        server_cfg: vec![workers.max(1), resp64, server_work, 0],
        client_cfg: vec![
            (conns & 0xff) as u8,
            (conns >> 8) as u8,
            (requests & 0xff) as u8,
            (requests >> 8) as u8,
            (port & 0xff) as u8,
            (port >> 8) as u8,
            resp64,
            (active & 0xff) as u8,
            (active >> 8) as u8,
            record as u8,
            1, // client-side response-handling work
        ],
        client_cfg_path: "/etc/loadgen-sim.conf",
        server_cfg_path: cfg_path,
        clients: 1,
        total_requests: requests as u64,
    }
}

/// sqlite speedtest1 configuration: (ops, work) for `-size=800`.
pub fn sqlite_cfg(scale: u64) -> Vec<u8> {
    let ops = (32_000 / scale).max(3000);
    vec![(ops & 0xff) as u8, (ops >> 8) as u8, 10, 0]
}

/// Boots the machine state for a spec: installs configs.
pub fn install_spec_config(k: &mut Kernel, spec: &MacroSpec) {
    k.vfs
        .write_file(spec.server_cfg_path, &spec.server_cfg)
        .expect("server cfg");
    k.vfs
        .write_file(spec.client_cfg_path, &spec.client_cfg)
        .expect("client cfg");
}

/// Errors from a macro run.
#[derive(Debug)]
pub enum MacroError {
    /// Server or client failed to load.
    Spawn(i64),
    /// The system wedged with clients unfinished.
    Stuck(String),
    /// The cycle budget ran out.
    Budget,
}

/// Runs one macro spec under `ip` (clients run natively) and measures the
/// load phase.
///
/// # Errors
///
/// See [`MacroError`].
pub fn run_macro(
    k: &mut Kernel,
    ip: &dyn Interposer,
    spec: &MacroSpec,
    budget: u64,
) -> Result<MacroResult, MacroError> {
    ip.install(k);
    install_spec_config(k, spec);
    let spid = ip
        .spawn(k, spec.server, &[spec.server.to_string()], &[])
        .map_err(MacroError::Spawn)?;
    // Let the server initialize and park in accept().
    match k.run(budget) {
        RunExit::Deadlock => {}
        RunExit::AllExited => {
            return Err(MacroError::Stuck(format!(
                "server exited early: {:?} out={:?}",
                k.process(spid).and_then(|p| p.exit_status),
                k.process(spid).map(|p| p.output_string())
            )))
        }
        RunExit::Budget => return Err(MacroError::Budget),
        RunExit::Stop => return Err(MacroError::Stuck("record session halted startup".into())),
    }
    let t0 = k.clock;
    let mut cpids: Vec<Pid> = Vec::new();
    for _ in 0..spec.clients {
        cpids.push(
            k.spawn(spec.client, &[spec.client.to_string()], &[], None)
                .map_err(MacroError::Spawn)?,
        );
    }
    // Drive the load phase to completion (servers park in accept when the
    // clients finish, so the run ends in Deadlock or AllExited).
    match k.run(budget) {
        RunExit::AllExited => {}
        RunExit::Deadlock => {
            let done = cpids
                .iter()
                .all(|c| k.process(*c).map(|p| p.exit_status.is_some()).unwrap_or(true));
            if !done {
                let diag = cpids
                    .iter()
                    .map(|c| {
                        let p = k.process(*c);
                        format!(
                            "client {c}: exit={:?} threads={:?}",
                            p.and_then(|p| p.exit_status),
                            p.map(|p| p
                                .threads
                                .iter()
                                .map(|t| t.state)
                                .collect::<Vec<ThreadState>>())
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(MacroError::Stuck(diag));
            }
        }
        RunExit::Budget => return Err(MacroError::Budget),
        RunExit::Stop => return Err(MacroError::Stuck("record session halted load phase".into())),
    }
    // Clients must have finished successfully.
    for c in &cpids {
        let st = k.process(*c).and_then(|p| p.exit_status);
        if st != Some(0) {
            return Err(MacroError::Stuck(format!("client {c} exited {st:?}")));
        }
    }
    Ok(MacroResult {
        requests: spec.total_requests,
        cycles: k.clock - t0,
    })
}

/// Result of a connection-scale run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRun {
    /// Requests completed.
    pub requests: u64,
    /// Clock at the end of the chunk in which the client finished
    /// connecting (the [`CONNECTED_MARKER`] appeared).
    pub t0: u64,
    /// Clock when the client was observed exited.
    pub t1: u64,
    /// The load generator's pid (for event-stream attribution).
    pub client: Pid,
}

impl ScaleRun {
    /// Requests per billion cycles over the load phase.
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / (self.t1 - self.t0).max(1) as f64 * 1e9
    }
}

/// Chunk length for [`run_scale`]'s incremental run loop. Fixed so chunk
/// boundaries — and therefore every measured clock — are deterministic.
const SCALE_CHUNK: u64 = 2_000_000;

/// Runs a [`scale_spec`] workload under `ip` on a **fresh** kernel (the
/// phase markers in `/data` must not pre-exist). Unlike [`run_macro`]
/// this drives the kernel in fixed-size chunks and watches guest-visible
/// state, because the busy-polling server never blocks: the run would
/// otherwise only end by budget exhaustion.
///
/// # Errors
///
/// See [`MacroError`].
pub fn run_scale(
    k: &mut Kernel,
    ip: &dyn Interposer,
    spec: &MacroSpec,
    budget: u64,
) -> Result<ScaleRun, MacroError> {
    ip.install(k);
    install_spec_config(k, spec);
    let ready = if spec.server.contains("epollsrv") {
        "/data/epollsrv.ready"
    } else {
        "/data/pollsrv.ready"
    };
    let spid = ip
        .spawn(k, spec.server, &[spec.server.to_string()], &[])
        .map_err(MacroError::Spawn)?;
    let mut spent: u64 = 0;
    while !k.vfs.exists(ready) {
        match k.run(SCALE_CHUNK) {
            RunExit::Budget => {}
            RunExit::Deadlock => {
                if !k.vfs.exists(ready) {
                    return Err(MacroError::Stuck("server wedged before ready".into()));
                }
            }
            RunExit::AllExited => {
                return Err(MacroError::Stuck(format!(
                    "server exited early: {:?}",
                    k.process(spid).and_then(|p| p.exit_status)
                )))
            }
            RunExit::Stop => return Err(MacroError::Stuck("record session halted startup".into())),
        }
        spent += SCALE_CHUNK;
        if spent > budget {
            return Err(MacroError::Budget);
        }
    }
    let cpid = k
        .spawn(spec.client, &[spec.client.to_string()], &[], None)
        .map_err(MacroError::Spawn)?;
    let mut t0 = None;
    let t1 = loop {
        let exit = k.run(SCALE_CHUNK);
        if t0.is_none() && k.vfs.exists(CONNECTED_MARKER) {
            t0 = Some(k.clock);
        }
        let client_done = k
            .process(cpid)
            .map(|p| p.exit_status.is_some())
            .unwrap_or(true);
        if client_done {
            break k.clock;
        }
        match exit {
            RunExit::Budget => {}
            RunExit::Deadlock | RunExit::AllExited => {
                let p = k.process(cpid);
                return Err(MacroError::Stuck(format!(
                    "system wedged with client unfinished: exit={:?} threads={:?}",
                    p.and_then(|p| p.exit_status),
                    p.map(|p| p.threads.iter().map(|t| t.state).collect::<Vec<ThreadState>>())
                )));
            }
            RunExit::Stop => return Err(MacroError::Stuck("record session halted load".into())),
        }
        spent += SCALE_CHUNK;
        if spent > budget {
            return Err(MacroError::Budget);
        }
    };
    let st = k.process(cpid).and_then(|p| p.exit_status);
    if st != Some(0) {
        return Err(MacroError::Stuck(format!("client exited {st:?}")));
    }
    // The client stamps clock_gettime timespecs into STATS_LOG at the start
    // and end of its load phase; those are cycle-exact where the chunked
    // observations above are only chunk-granular.
    let (t0, t1) = match k.vfs.read_file(STATS_LOG).ok().and_then(parse_stats) {
        Some(ts) => ts,
        None => (t0.unwrap_or(t1), t1),
    };
    Ok(ScaleRun {
        requests: spec.total_requests,
        t0,
        t1,
        client: cpid,
    })
}

/// Reconstructs the two load-phase cycle stamps from the raw timespec
/// pairs the load generator wrote to [`STATS_LOG`].
fn parse_stats(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < 32 {
        return None;
    }
    let cycles = |b: &[u8]| {
        let sec = u64::from_le_bytes(b[..8].try_into().unwrap());
        let nsec = u64::from_le_bytes(b[8..16].try_into().unwrap());
        // Inverse of the kernel's clock -> (sec, nsec) map at 3.2 GHz.
        sec * 3_200_000_000 + nsec * 32 / 10
    };
    Some((cycles(&bytes[..16]), cycles(&bytes[16..32])))
}

/// Runs the sqlite completion workload; returns total cycles from spawn to
/// exit (the paper's completion-time metric).
///
/// # Errors
///
/// See [`MacroError`].
pub fn run_sqlite(
    k: &mut Kernel,
    ip: &dyn Interposer,
    cfg: &[u8],
    budget: u64,
) -> Result<u64, MacroError> {
    ip.install(k);
    k.vfs
        .write_file("/etc/sqlite-sim.conf", cfg)
        .expect("sqlite cfg");
    let t0 = k.clock;
    let pid = ip
        .spawn(k, "/usr/bin/sqlite-sim", &[], &[])
        .map_err(MacroError::Spawn)?;
    match k.run(budget) {
        RunExit::AllExited => {}
        RunExit::Budget => return Err(MacroError::Budget),
        RunExit::Deadlock => return Err(MacroError::Stuck("sqlite wedged".into())),
        RunExit::Stop => return Err(MacroError::Stuck("record session halted run".into())),
    }
    let st = k.process(pid).and_then(|p| p.exit_status);
    if st != Some(0) {
        return Err(MacroError::Stuck(format!(
            "sqlite exited {st:?}: {}",
            k.process(pid).map(|p| p.output_string()).unwrap_or_default()
        )));
    }
    Ok(k.clock - t0)
}
