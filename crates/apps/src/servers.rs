//! The four macrobenchmark applications (paper §6.2.2): nginx-sim,
//! lighttpd-sim, redis-sim, and sqlite-sim.
//!
//! Each is a guest program whose *request-path syscall mix* models its real
//! counterpart: the web servers run accept/read/write loops over loopback
//! sockets with per-request parsing work; redis pipelines batches of GETs
//! and optionally fans out to I/O threads over pipes (which multiplies its
//! kernel entries per request — the effect behind its dramatic 6-thread SUD
//! collapse in Table 6); sqlite runs a speedtest1-style single-threaded
//! page-I/O loop with periodic fsync.
//!
//! Real servers also contain far more *distinct* syscall instruction sites
//! than a minimal loop (inlined syscalls, module init paths, error paths
//! — see Table 2: nginx 43, lighttpd 44, redis 92). We model that site
//! diversity with a block of one-shot init-time probe sites per application,
//! calibrated so the offline phase observes counts matching the paper.
//!
//! Binary configs (installed by the workload harness):
//!
//! * web servers `/etc/<name>.conf`: `[workers, resp_kb, work, 0]`
//! * redis `/etc/redis-sim.conf`: `[io_threads, batch, work, 0]`
//! * sqlite `/etc/sqlite-sim.conf`: `[ops_lo, ops_hi, work, 0]`

use sim_isa::Reg;
use sim_kernel::nr;
use sim_loader::{ImageBuilder, SimElf, FILLER_LIBS, LIBC_PATH};

/// nginx-sim listen port.
pub const NGINX_PORT: u64 = 80;
/// lighttpd-sim listen port.
pub const LIGHTTPD_PORT: u64 = 8080;
/// redis-sim listen port.
pub const REDIS_PORT: u64 = 6379;
/// epollsrv-sim listen port.
pub const EPOLL_PORT: u64 = 7070;
/// pollsrv-sim listen port.
pub const POLL_PORT: u64 = 7071;
/// Most concurrent connections the scale servers/clients size their fd
/// arrays for (the top of the simscale sweep).
pub const SCALE_MAX_CONNS: usize = 10_000;
/// Bytes per redis request in a pipeline batch.
pub const REDIS_REQ_BYTES: u64 = 32;
/// Bytes per redis response.
pub const REDIS_RESP_BYTES: u64 = 64;

/// One-shot init-time probe sites modeling real servers' site diversity
/// (`clock_gettime` probes, each a distinct `syscall` instruction).
fn emit_diversity_sites(b: &mut ImageBuilder, k: usize) {
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.lea_label(Reg::Rsi, "div_scratch");
    for _ in 0..k {
        b.asm.mov_imm(Reg::Rax, nr::SYS_CLOCK_GETTIME);
        b.asm.syscall();
    }
}

/// Loads `/etc/<name>.conf` into the `cfg` data object via libc wrappers.
fn emit_load_config(b: &mut ImageBuilder) {
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.label("__cfg_rd");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("__cfg_rd"); // injected errno: retry
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
}

/// Busy loop of `cfg[work_idx] << shift` iterations (guarded against zero).
fn emit_work_loop_shifted(b: &mut ImageBuilder, work_idx: i32, unique: &str, shift: u8) {
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, work_idx);
    b.asm.shl_imm(Reg::Rcx, shift);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    let done = format!("__work_done_{unique}");
    let looplbl = format!("__work_loop_{unique}");
    b.asm.jz(&done);
    b.asm.label(&looplbl);
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz(&looplbl);
    b.asm.label(&done);
}

/// Busy loop of `cfg[work_idx] * 256` iterations.
fn emit_work_loop(b: &mut ImageBuilder, work_idx: i32, unique: &str) {
    emit_work_loop_shifted(b, work_idx, unique, 8);
}

/// Builds a web server (nginx-sim / lighttpd-sim differ in name, port,
/// per-request extras, and site diversity).
fn build_web_server(name: &str, port: u64, diversity: usize, lighttpd_extras: bool) -> SimElf {
    let path = format!("/usr/bin/{name}");
    let mut b = ImageBuilder::new(&path);
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    emit_load_config(&mut b);
    emit_diversity_sites(&mut b, diversity);
    // socket / bind / listen
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax); // listener fd
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, port);
    b.call_import("bind");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 128);
    b.call_import("listen");
    // fork workers-1 children; every worker runs the accept loop.
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.label("fork_loop");
    b.asm.cmp_imm(Reg::R13, 0);
    b.asm.jz("accept_loop");
    b.call_import("fork");
    b.asm.test_reg(Reg::Rax, Reg::Rax);
    b.asm.jz("accept_loop"); // child serves
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jmp("fork_loop");

    b.asm.label("accept_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("accept");
    b.asm.mov_reg(Reg::R14, Reg::Rax); // connection fd
    b.asm.label("conn_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 128);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_close");
    // Pipelining: a read may deliver several 64-byte requests at once;
    // answer each one (r13 = request count in the buffer).
    b.asm.mov_reg(Reg::R13, Reg::Rax);
    b.asm.shr_imm(Reg::R13, 6);
    b.asm.label("serve_one");
    if lighttpd_extras {
        // lighttpd's event loop stamps each request.
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.lea_label(Reg::Rsi, "div_scratch");
        b.call_import("clock_gettime");
    }
    // Request parsing / response formatting work.
    emit_work_loop(&mut b, 2, "req");
    // Response: a 128-byte header write, plus a separate body write for
    // non-empty files (the sendfile/writev split real servers perform).
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 128);
    b.call_import("write");
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rdx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rdx, 10); // resp_kb KiB of body
    b.asm.cmp_imm(Reg::Rdx, 0);
    b.asm.jz("next_req");
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.call_import("write");
    b.asm.label("next_req");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("serve_one");
    b.asm.jmp("conn_loop");
    b.asm.label("conn_close");
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.call_import("close");
    b.asm.jmp("accept_loop");

    b.data_object("cfg", &[1, 0, 4, 0, 0, 0, 0, 0]);
    b.data_object("cfg_path", format!("/etc/{name}.conf\0").as_bytes());
    b.data_object("div_scratch", &[0u8; 16]);
    b.data_object("reqbuf", &[0u8; 128]);
    b.data_object("docroot", b"/home/user\0");
    let mut resp = b"HTTP/1.1 200 OK\r\nServer: sim\r\nContent-Length: 4096\r\n\r\n".to_vec();
    resp.resize(128 + 4 * 4096, b'x');
    b.data_object("respbuf", &resp);
    b.finish()
}

/// Builds nginx-sim.
pub fn build_nginx() -> SimElf {
    build_web_server("nginx-sim", NGINX_PORT, 34, false)
}

/// Builds lighttpd-sim.
pub fn build_lighttpd() -> SimElf {
    build_web_server("lighttpd-sim", LIGHTTPD_PORT, 34, true)
}

/// Builds redis-sim: a pipelined GET server with optional I/O threads.
pub fn build_redis() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/redis-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    emit_load_config(&mut b);
    emit_diversity_sites(&mut b, 81);
    // socket / bind / listen
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, REDIS_PORT);
    b.call_import("bind");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 128);
    b.call_import("listen");

    // If io_threads > 1: create 6 job pipes + 1 completion pipe and spawn
    // the I/O threads.
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.cmp_imm(Reg::R13, 1);
    b.asm.jcc(sim_isa::Cond::Le, "accept_phase");
    // completion pipe
    b.asm.lea_label(Reg::Rdi, "comp_pipe");
    b.call_import("pipe");
    // 6 job pipes + 6 threads
    b.asm.mov_imm(Reg::Rbx, 0);
    b.asm.label("spawn_loop");
    // pipe(&jobpipes[i])
    b.asm.lea_label(Reg::Rdi, "jobpipes");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::Rdi, Reg::Rcx);
    b.call_import("pipe");
    // stack for the thread
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 0x8000);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    b.call_import("mmap");
    b.asm.mov_reg(Reg::Rsi, Reg::Rax);
    b.asm.add_imm(Reg::Rsi, 0x7ff0);
    // Seed the child's stack with its entry point: the clone wrapper's
    // `ret` in the child pops it (exactly how glibc's clone shim starts
    // the thread function). The child inherits rbx = its index.
    b.asm.lea_label(Reg::Rcx, "io_thread");
    b.asm.store(Reg::Rsi, 0, Reg::Rcx);
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("clone");
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_imm(Reg::Rbx, 6);
    b.asm.jl("spawn_loop");

    // ---- main thread: accept + batch loop -----------------------------------
    b.asm.label("accept_phase");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("accept");
    b.asm.mov_reg(Reg::R14, Reg::Rax);
    // Publish the connection fd for the I/O threads.
    b.asm.lea_label(Reg::R11, "sockfd");
    b.asm.store(Reg::R11, 0, Reg::R14);
    b.asm.label("serve_loop");
    // read one pipeline batch (batch * 32 bytes)
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 4096);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_done");
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.cmp_imm(Reg::R13, 1);
    b.asm.jcc(sim_isa::Cond::G, "fan_out");
    // Single-threaded: do the batch's work and respond in one write.
    emit_work_loop_shifted(&mut b, 2, "single", 11);
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rdx, Reg::R11, 1); // batch
    b.asm.mov_imm(Reg::Rcx, REDIS_RESP_BYTES);
    b.asm.imul_reg(Reg::Rdx, Reg::Rcx);
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.call_import("write");
    b.asm.jmp("serve_loop");

    // Fan out: one 16-byte job to each I/O thread, then collect 6
    // completion bytes.
    b.asm.label("fan_out");
    b.asm.mov_imm(Reg::Rbx, 0);
    b.asm.label("dispatch_loop");
    b.asm.lea_label(Reg::R11, "jobpipes");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.load(Reg::Rdi, Reg::R11, 0);
    b.asm.shr_imm(Reg::Rdi, 32); // write end (upper i32)
    b.asm.lea_label(Reg::Rsi, "jobbuf");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("write");
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_imm(Reg::Rbx, 6);
    b.asm.jl("dispatch_loop");
    // collect completions (6 bytes total, possibly split)
    b.asm.mov_imm(Reg::Rbx, 6);
    b.asm.label("collect_loop");
    b.asm.lea_label(Reg::R11, "comp_pipe");
    b.asm.load(Reg::Rdi, Reg::R11, 0);
    b.asm.shl_imm(Reg::Rdi, 32);
    b.asm.shr_imm(Reg::Rdi, 32); // read end (lower i32)
    b.asm.lea_label(Reg::Rsi, "compbuf");
    b.asm.mov_imm(Reg::Rdx, 6);
    b.call_import("read");
    b.asm.sub_reg(Reg::Rbx, Reg::Rax);
    b.asm.cmp_imm(Reg::Rbx, 0);
    b.asm.jcc(sim_isa::Cond::G, "collect_loop");
    b.asm.jmp("serve_loop");

    b.asm.label("conn_done");
    b.asm.mov_reg(Reg::Rdi, Reg::R14);
    b.call_import("close");
    b.asm.jmp("accept_phase");

    // ---- I/O thread: read job → work → write response share → complete -----
    b.asm.label("io_thread");
    b.asm.label("io_loop");
    b.asm.lea_label(Reg::R11, "jobpipes");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.load(Reg::Rdi, Reg::R11, 0);
    b.asm.shl_imm(Reg::Rdi, 32);
    b.asm.shr_imm(Reg::Rdi, 32); // job read end
    b.asm.lea_label(Reg::Rsi, "jobbuf");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    emit_work_loop_shifted(&mut b, 2, "io", 11);
    // write this thread's response share: cfg[3] * 8 bytes (the workload
    // harness sets cfg[3] = batch*64/6/8 so shares sum to the batch).
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rdx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rdx, 3);
    b.asm.lea_label(Reg::R11, "sockfd");
    b.asm.load(Reg::Rdi, Reg::R11, 0);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.call_import("write");
    // completion byte
    b.asm.lea_label(Reg::R11, "comp_pipe");
    b.asm.load(Reg::Rdi, Reg::R11, 0);
    b.asm.shr_imm(Reg::Rdi, 32); // completion write end
    b.asm.lea_label(Reg::Rsi, "compbuf");
    b.asm.mov_imm(Reg::Rdx, 1);
    b.call_import("write");
    b.asm.jmp("io_loop");

    b.data_object("cfg", &[1, 12, 4, 0, 0, 0, 0, 0]);
    b.data_object("cfg_path", b"/etc/redis-sim.conf\0");
    b.data_object("div_scratch", &[0u8; 16]);
    b.data_object("reqbuf", &[0u8; 4096]);
    b.data_object("respbuf", &vec![b'$'; 2048]);
    b.data_object("jobbuf", &[0u8; 16]);
    b.data_object("compbuf", &[0u8; 8]);
    b.data_object("jobpipes", &[0u8; 48]);
    b.data_object("comp_pipe", &[0u8; 8]);
    b.data_object("sockfd", &[0u8; 8]);
    b.finish()
}

/// Builds sqlite-sim: the speedtest1-style page-I/O loop.
pub fn build_sqlite() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/sqlite-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.needs(FILLER_LIBS[1]);
    b.asm.label("main");
    emit_load_config(&mut b);
    emit_diversity_sites(&mut b, 10);
    // Scratch arena + db bookkeeping, as sqlite does at open.
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 65536);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    b.call_import("mmap");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "db_path");
    b.asm.lea_label(Reg::Rdx, "page");
    b.asm.mov_imm(Reg::R10, 0);
    b.call_import("newfstatat"); // -ENOENT on a fresh db, as upstream
    b.asm.lea_label(Reg::Rdi, "wal_path");
    b.call_import("unlink"); // stale-WAL cleanup attempt
    // open the database
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "db_path");
    b.asm.mov_imm(Reg::Rdx, 0x40);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    // ops = u16 from cfg[0..2]
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);
    b.asm.label("op_loop");
    // position at (op * 512) % 64 KiB
    b.asm.mov_reg(Reg::Rsi, Reg::R13);
    b.asm.shl_imm(Reg::Rsi, 9);
    b.asm.and_imm(Reg::Rsi, 0xffff);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("lseek");
    // WAL append
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "page");
    b.asm.mov_imm(Reg::Rdx, 512);
    b.call_import("write");
    // page read-back
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "page");
    b.asm.mov_imm(Reg::Rdx, 512);
    b.call_import("read");
    // checkpointing fsync every 16 ops
    b.asm.mov_reg(Reg::Rcx, Reg::R13);
    b.asm.and_imm(Reg::Rcx, 15);
    b.asm.cmp_imm(Reg::Rcx, 0);
    b.asm.jnz("skip_sync");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("fsync");
    b.asm.label("skip_sync");
    // query evaluation work
    emit_work_loop(&mut b, 2, "op");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("op_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("exit_group");

    b.data_object("cfg", &[0, 1, 4, 0, 0, 0, 0, 0]);
    b.data_object("cfg_path", b"/etc/sqlite-sim.conf\0");
    b.data_object("div_scratch", &[0u8; 16]);
    b.data_object("db_path", b"/data/test.db\0");
    b.data_object("wal_path", b"/data/test.db-wal\0");
    b.data_object("page", &[0u8; 512]);
    b.finish()
}

/// `fcntl(fd_reg, F_SETFL, O_NONBLOCK)`.
fn emit_set_nonblock(b: &mut ImageBuilder, fd: Reg) {
    b.asm.mov_reg(Reg::Rdi, fd);
    b.asm.mov_imm(Reg::Rsi, nr::F_SETFL);
    b.asm.mov_imm(Reg::Rdx, nr::O_NONBLOCK);
    b.call_import_via("fcntl", Reg::R11);
}

/// Creates the readiness marker file the scale harness polls for, then
/// closes it (`openat(O_CREAT)` + `close`). Emitted after `listen` so a
/// client spawned on seeing the marker can always connect.
fn emit_ready_marker(b: &mut ImageBuilder) {
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "ready_path");
    b.asm.mov_imm(Reg::Rdx, 0x40); // O_CREAT
    b.call_import_via("openat", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::Rax);
    b.call_import_via("close", Reg::R11);
}

/// Serves every request in the buffer just read (`rax` = bytes, `rbp` =
/// connection fd): per 64-byte request, `cfg[2]*256` parse/format work
/// and a `cfg[1]*64`-byte response. The write loop tolerates short writes
/// and injected errnos (retry with the unsent remainder) so the response
/// byte stream is identical under any errno fault plan — the property the
/// epoll-vs-polling equivalence proptest pins down. Jumps to `done` when
/// the buffer is answered.
fn emit_serve_requests(b: &mut ImageBuilder, unique: &str, done: &str) {
    let serve_one = format!("__serve_one_{unique}");
    let wr_loop = format!("__wr_loop_{unique}");
    b.asm.mov_reg(Reg::R13, Reg::Rax);
    b.asm.shr_imm(Reg::R13, 6);
    b.asm.cmp_imm(Reg::R13, 0);
    b.asm.jz(done); // runt read (< one request): nothing to answer
    b.asm.label(&serve_one);
    emit_work_loop(b, 2, unique);
    // r9 = response bytes, r8 = bytes sent so far (both survive syscalls).
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R9, Reg::R11, 1);
    b.asm.shl_imm(Reg::R9, 6);
    b.asm.mov_imm(Reg::R8, 0);
    b.asm.label(&wr_loop);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.add_reg(Reg::Rsi, Reg::R8);
    b.asm.mov_reg(Reg::Rdx, Reg::R9);
    b.asm.sub_reg(Reg::Rdx, Reg::R8);
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.call_import_via("write", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl(&wr_loop); // EAGAIN/injected errno: retry
    b.asm.add_reg(Reg::R8, Reg::Rax);
    b.asm.cmp_reg(Reg::R8, Reg::R9);
    b.asm.jl(&wr_loop); // short write: send the rest
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz(&serve_one);
    b.asm.jmp(done);
}

/// Builds epollsrv-sim: an event-driven server in the nginx/libevent
/// mold. Each worker (prefork via `cfg[0]`) owns a private epoll instance
/// watching the shared nonblocking listener (level-triggered, so the
/// thundering herd on a connect burst is real) plus its accepted
/// connections; ready connections are drained with blocking reads —
/// level-triggered readiness guarantees data or EOF.
///
/// Config `/etc/epollsrv-sim.conf`: `[workers, resp64, work, 0]`
/// (`resp64` = response bytes / 64 per request).
pub fn build_epoll_server() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/epollsrv-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    emit_load_config(&mut b);
    emit_diversity_sites(&mut b, 20);
    // socket / bind / listen / O_NONBLOCK, then the readiness marker.
    b.call_import_via("socket", Reg::R11);
    b.asm.mov_reg(Reg::R12, Reg::Rax); // listener fd
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, EPOLL_PORT);
    b.call_import_via("bind", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.call_import_via("listen", Reg::R11);
    emit_set_nonblock(&mut b, Reg::R12);
    emit_ready_marker(&mut b);
    // Prefork cfg[0]-1 children; every worker runs the event loop.
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.label("fork_loop");
    b.asm.cmp_imm(Reg::R13, 0);
    b.asm.jz("ep_setup");
    b.call_import_via("fork", Reg::R11);
    b.asm.test_reg(Reg::Rax, Reg::Rax);
    b.asm.jz("ep_setup"); // child serves
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jmp("fork_loop");

    // Per-worker epoll instance watching the shared listener.
    b.asm.label("ep_setup");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import_via("epoll_create1", Reg::R11);
    b.asm.mov_reg(Reg::R15, Reg::Rax); // epoll fd
    b.asm.mov_reg(Reg::Rdi, Reg::R15);
    b.asm.mov_imm(Reg::Rsi, nr::EPOLL_CTL_ADD);
    b.asm.mov_reg(Reg::Rdx, Reg::R12);
    b.asm.mov_imm(Reg::R10, nr::EPOLLIN);
    b.call_import_via("epoll_ctl", Reg::R11);

    b.asm.label("ev_wait");
    b.asm.mov_reg(Reg::Rdi, Reg::R15);
    b.asm.lea_label(Reg::Rsi, "evbuf");
    b.asm.mov_imm(Reg::Rdx, 64);
    b.call_import_via("epoll_wait", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("ev_wait"); // injected errno: retry
    b.asm.mov_reg(Reg::R14, Reg::Rax); // event count (>= 1)
    b.asm.mov_imm(Reg::Rbx, 0); // event index
    b.asm.label("ev_body");
    // rbp = evbuf[rbx].fd (16-byte records: [fd u64][events u64])
    b.asm.lea_label(Reg::R11, "evbuf");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 4);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.load(Reg::Rbp, Reg::R11, 0);
    b.asm.cmp_reg(Reg::Rbp, Reg::R12);
    b.asm.jz("do_accept");
    // Connection readable: level-triggered IN means data or EOF/HUP.
    b.asm.label("rd_retry");
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 4096);
    b.call_import_via("read", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("rd_retry"); // injected errno: retry
    b.asm.jz("close_conn"); // EOF
    emit_serve_requests(&mut b, "ep", "ev_next");
    b.asm.label("close_conn");
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.call_import_via("close", Reg::R11); // the kernel drops it from our interest set
    b.asm.jmp("ev_next");
    // Listener readable: drain the backlog (EAGAIN ends the drain — with
    // several workers another one may have won the race).
    b.asm.label("do_accept");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import_via("accept", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("ev_next"); // backlog drained
    b.asm.mov_reg(Reg::Rdx, Reg::Rax); // new connection: watch it
    b.asm.mov_reg(Reg::Rdi, Reg::R15);
    b.asm.mov_imm(Reg::Rsi, nr::EPOLL_CTL_ADD);
    b.asm.mov_imm(Reg::R10, nr::EPOLLIN);
    b.call_import_via("epoll_ctl", Reg::R11);
    b.asm.jmp("do_accept");
    b.asm.label("ev_next");
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_reg(Reg::Rbx, Reg::R14);
    b.asm.jl("ev_body");
    b.asm.jmp("ev_wait");

    b.data_object("cfg", &[1, 2, 4, 0, 0, 0, 0, 0]);
    b.data_object("cfg_path", b"/etc/epollsrv-sim.conf\0");
    b.data_object("ready_path", b"/data/epollsrv.ready\0");
    b.data_object("div_scratch", &[0u8; 16]);
    b.data_object("reqbuf", &[0u8; 4096]);
    b.data_object("evbuf", &[0u8; 64 * 16]);
    b.data_object("respbuf", &vec![b'r'; 16384]);
    b.finish()
}

/// Builds pollsrv-sim: the readiness strawman. One process keeps every
/// connection nonblocking in a flat array and busy-scans it — accept
/// probe, then a speculative `read` per live connection per pass. Each
/// idle connection costs a full EAGAIN syscall round-trip through the
/// interposer on every pass, which is exactly the O(connections) tax the
/// simscale matrix quantifies against the epoll variant.
///
/// Config `/etc/pollsrv-sim.conf`: `[_, resp64, work, 0]` (single
/// process; the worker byte is ignored).
pub fn build_poll_server() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/pollsrv-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    emit_load_config(&mut b);
    emit_diversity_sites(&mut b, 12);
    b.call_import_via("socket", Reg::R11);
    b.asm.mov_reg(Reg::R12, Reg::Rax); // listener fd
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, POLL_PORT);
    b.call_import_via("bind", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.call_import_via("listen", Reg::R11);
    emit_set_nonblock(&mut b, Reg::R12);
    emit_ready_marker(&mut b);
    b.asm.mov_imm(Reg::R15, 0); // connection count

    b.asm.label("scan");
    // Accept drain: pull everything out of the backlog, nonblocking.
    b.asm.label("acc_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import_via("accept", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("scan_conns"); // EAGAIN: backlog empty
    b.asm.mov_reg(Reg::Rbp, Reg::Rax);
    b.asm.lea_label(Reg::R11, "conns");
    b.asm.mov_reg(Reg::Rcx, Reg::R15);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.store(Reg::R11, 0, Reg::Rbp);
    emit_set_nonblock(&mut b, Reg::Rbp);
    b.asm.add_imm(Reg::R15, 1);
    b.asm.jmp("acc_loop");

    // Scan every connection with a speculative nonblocking read.
    b.asm.label("scan_conns");
    b.asm.cmp_imm(Reg::R15, 0);
    b.asm.jz("scan");
    b.asm.mov_imm(Reg::Rbx, 0);
    b.asm.label("conn_iter");
    b.asm.lea_label(Reg::R11, "conns");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.load(Reg::Rbp, Reg::R11, 0);
    b.asm.cmp_imm(Reg::Rbp, 0);
    b.asm.jl("next_conn"); // closed slot (-1)
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 4096);
    b.call_import_via("read", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("next_conn"); // EAGAIN (or injected errno): next pass
    b.asm.jz("close_this"); // EOF
    emit_serve_requests(&mut b, "poll", "next_conn");
    b.asm.label("close_this");
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.call_import_via("close", Reg::R11);
    b.asm.lea_label(Reg::R11, "conns");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.mov_imm(Reg::Rbp, (-1i64) as u64);
    b.asm.store(Reg::R11, 0, Reg::Rbp);
    b.asm.label("next_conn");
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_reg(Reg::Rbx, Reg::R15);
    b.asm.jl("conn_iter");
    b.asm.jmp("scan");

    b.data_object("cfg", &[1, 2, 4, 0, 0, 0, 0, 0]);
    b.data_object("cfg_path", b"/etc/pollsrv-sim.conf\0");
    b.data_object("ready_path", b"/data/pollsrv.ready\0");
    b.data_object("div_scratch", &[0u8; 16]);
    b.data_object("reqbuf", &[0u8; 4096]);
    b.data_object("conns", &vec![0u8; SCALE_MAX_CONNS * 8]);
    b.data_object("respbuf", &vec![b'r'; 16384]);
    b.finish()
}

/// Installs every server binary.
pub fn install_servers(vfs: &mut sim_kernel::Vfs) {
    build_nginx().install(vfs);
    build_lighttpd().install(vfs);
    build_redis().install(vfs);
    build_sqlite().install(vfs);
    build_epoll_server().install(vfs);
    build_poll_server().install(vfs);
    vfs.mkdir_p("/data").expect("/data creatable");
}
