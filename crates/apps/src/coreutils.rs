//! Simulated coreutils: `pwd`, `touch`, `ls`, `cat`, `clear`.
//!
//! Each utility performs its real counterpart's post-startup syscall mix
//! through the libc-sim wrappers, so the number of unique
//! `syscall`-instruction sites the offline phase observes matches the
//! paper's Table 2 (pwd 7, touch 9, ls 10, cat 11, clear 13). All of them
//! also carry a realistic startup footprint (library loading via the
//! ld-sim stub); `ls` links the extra libraries real `ls` does, pushing its
//! startup past 100 syscalls (§6.1).

use sim_isa::Reg;
use sim_kernel::Vfs;
use sim_loader::{ImageBuilder, SimElf, FILLER_LIBS, LIBC_PATH};

/// Install paths of all five utilities.
pub const COREUTILS: [&str; 5] = [
    "/usr/bin/pwd-sim",
    "/usr/bin/touch-sim",
    "/usr/bin/ls-sim",
    "/usr/bin/cat-sim",
    "/usr/bin/clear-sim",
];

/// Expected unique offline-logged sites per utility (paper Table 2).
pub const EXPECTED_SITES: [(&str, usize); 5] = [
    ("/usr/bin/pwd-sim", 7),
    ("/usr/bin/touch-sim", 9),
    ("/usr/bin/ls-sim", 10),
    ("/usr/bin/cat-sim", 11),
    ("/usr/bin/clear-sim", 13),
];

/// Seeds the VFS with the files the utilities operate on.
pub fn install_home(vfs: &mut Vfs) {
    vfs.write_file("/home/user/a.txt", b"alpha file contents\n").unwrap();
    vfs.write_file("/home/user/b.txt", b"bravo file contents: a slightly longer line\n")
        .unwrap();
    vfs.write_file("/home/user/notes.md", b"# notes\n- reproduce K23\n").unwrap();
    vfs.write_file(
        "/usr/share/terminfo/x/xterm",
        &vec![0x1b; 1024], // escape-sequence soup
    )
    .unwrap();
    vfs.write_file("/etc/passwd", b"user:x:1000:1000::/home/user:/bin/sh\n").unwrap();
}

fn wrapper0(b: &mut ImageBuilder, f: &str) {
    b.call_import(f);
}

/// pwd-sim: ioctl(tty), mmap(buffer), getcwd, fstat, write, close,
/// exit_group — 7 sites.
pub fn build_pwd() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/pwd-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // ioctl(1, TCGETS, buf)
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_imm(Reg::Rsi, 0x5401);
    b.asm.lea_label(Reg::Rdx, "buf");
    wrapper0(&mut b, "ioctl");
    // mmap(0, 4096, RW) — libc's output buffer
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "mmap");
    // getcwd(buf, 128)
    b.asm.lea_label(Reg::Rdi, "buf");
    b.asm.mov_imm(Reg::Rsi, 128);
    wrapper0(&mut b, "getcwd");
    b.asm.mov_reg(Reg::R12, Reg::Rax); // length incl. NUL
    // fstatat(AT_FDCWD, ".", st, 0)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "dot");
    b.asm.lea_label(Reg::Rdx, "st");
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "newfstatat");
    // write(1, buf, len)
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.lea_label(Reg::Rsi, "buf");
    b.asm.mov_reg(Reg::Rdx, Reg::R12);
    wrapper0(&mut b, "write");
    // close(0)
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "close");
    // exit_group(0)
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "exit_group");
    b.data_object("buf", &[0u8; 128]);
    b.data_object("st", &[0u8; 64]);
    b.data_object("dot", b".\0");
    b.finish()
}

/// touch-sim: mmap, getuid, ioctl, fstat, openat(O_CREAT), dup, utimensat,
/// close, exit_group — 9 sites.
pub fn build_touch() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/touch-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "mmap");
    wrapper0(&mut b, "getuid");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_imm(Reg::Rsi, 0x5401);
    b.asm.lea_label(Reg::Rdx, "st");
    wrapper0(&mut b, "ioctl");
    // fstatat the target (may not exist yet)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "path");
    b.asm.lea_label(Reg::Rdx, "st");
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "newfstatat");
    // openat(AT_FDCWD, path, O_CREAT)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "path");
    b.asm.mov_imm(Reg::Rdx, 0x40);
    wrapper0(&mut b, "openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    // dup(fd)
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    wrapper0(&mut b, "dup");
    b.asm.mov_reg(Reg::R13, Reg::Rax);
    // utimensat(AT_FDCWD, path, NULL, 0)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "utimensat");
    // close both fds (one wrapper site, two executions)
    b.asm.mov_reg(Reg::Rdi, Reg::R13);
    wrapper0(&mut b, "close");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    wrapper0(&mut b, "close");
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "exit_group");
    b.data_object("st", &[0u8; 64]);
    b.data_object("path", b"/home/user/touched.txt\0");
    b.finish()
}

/// ls-sim: mmap, ioctl, access, getcwd, openat(dir), fstat (per entry),
/// getdents64 (loop), write, close, exit_group — 10 sites. Links the extra
/// libraries real `ls` pulls in, so its startup exceeds 100 syscalls.
pub fn build_ls() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/ls-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 8192);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "mmap");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_imm(Reg::Rsi, 0x5413); // TIOCGWINSZ
    b.asm.lea_label(Reg::Rdx, "st");
    wrapper0(&mut b, "ioctl");
    b.asm.lea_label(Reg::Rdi, "dirpath");
    wrapper0(&mut b, "access");
    b.asm.lea_label(Reg::Rdi, "buf");
    b.asm.mov_imm(Reg::Rsi, 128);
    wrapper0(&mut b, "getcwd");
    // openat(AT_FDCWD, dir, 0)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "dirpath");
    b.asm.mov_imm(Reg::Rdx, 0);
    wrapper0(&mut b, "openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    // getdents loop: read entries until 0; stat the dir each batch.
    b.asm.label("dents_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "buf");
    b.asm.mov_imm(Reg::Rdx, 64);
    wrapper0(&mut b, "getdents64");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("done");
    b.asm.mov_reg(Reg::R13, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "dirpath");
    b.asm.lea_label(Reg::Rdx, "st");
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "newfstatat");
    // write the batch to stdout
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.lea_label(Reg::Rsi, "buf");
    b.asm.mov_reg(Reg::Rdx, Reg::R13);
    wrapper0(&mut b, "write");
    b.asm.jmp("dents_loop");
    b.asm.label("done");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    wrapper0(&mut b, "close");
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "exit_group");
    b.data_object("st", &[0u8; 64]);
    b.data_object("buf", &[0u8; 128]);
    b.data_object("dirpath", b"/home/user\0");
    b.finish()
}

/// cat-sim: mmap, ioctl, access, openat, fstat, lseek, madvise, read (loop),
/// write (loop), close, exit_group — 11 sites.
pub fn build_cat() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/cat-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.needs(FILLER_LIBS[0]);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "mmap");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_imm(Reg::Rsi, 0x5401);
    b.asm.lea_label(Reg::Rdx, "st");
    wrapper0(&mut b, "ioctl");
    b.asm.lea_label(Reg::Rdi, "path");
    wrapper0(&mut b, "access");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "path");
    b.asm.mov_imm(Reg::Rdx, 0);
    wrapper0(&mut b, "openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "path");
    b.asm.lea_label(Reg::Rdx, "st");
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "newfstatat");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 0);
    b.asm.mov_imm(Reg::Rdx, 0); // SEEK_SET
    wrapper0(&mut b, "lseek");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 0);
    b.asm.mov_imm(Reg::Rdx, 2); // MADV_SEQUENTIAL-ish
    wrapper0(&mut b, "madvise");
    b.asm.label("copy_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "buf");
    b.asm.mov_imm(Reg::Rdx, 32);
    wrapper0(&mut b, "read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("done");
    b.asm.mov_reg(Reg::Rdx, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.lea_label(Reg::Rsi, "buf");
    wrapper0(&mut b, "write");
    b.asm.jmp("copy_loop");
    b.asm.label("done");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    wrapper0(&mut b, "close");
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "exit_group");
    b.data_object("st", &[0u8; 64]);
    b.data_object("buf", &[0u8; 64]);
    b.data_object("path", b"/home/user/a.txt\0");
    b.finish()
}

/// clear-sim: mmap, ioctl, access, openat (terminfo), fstat, read, lseek,
/// uname, getuid, write, munmap, close, exit_group — 13 sites.
pub fn build_clear() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/clear-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.needs(FILLER_LIBS[2]);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "mmap");
    b.asm.mov_reg(Reg::R13, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_imm(Reg::Rsi, 0x5401);
    b.asm.lea_label(Reg::Rdx, "st");
    wrapper0(&mut b, "ioctl");
    b.asm.lea_label(Reg::Rdi, "tipath");
    wrapper0(&mut b, "access");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "tipath");
    b.asm.mov_imm(Reg::Rdx, 0);
    wrapper0(&mut b, "openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "tipath");
    b.asm.lea_label(Reg::Rdx, "st");
    b.asm.mov_imm(Reg::R10, 0);
    wrapper0(&mut b, "newfstatat");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "buf");
    b.asm.mov_imm(Reg::Rdx, 64);
    wrapper0(&mut b, "read");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, 256);
    b.asm.mov_imm(Reg::Rdx, 0);
    wrapper0(&mut b, "lseek");
    b.asm.lea_label(Reg::Rdi, "buf");
    wrapper0(&mut b, "uname");
    wrapper0(&mut b, "getuid");
    // write the clear escape sequence
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.lea_label(Reg::Rsi, "esc");
    b.asm.mov_imm(Reg::Rdx, 7);
    wrapper0(&mut b, "write");
    // munmap the scratch mapping
    b.asm.mov_reg(Reg::Rdi, Reg::R13);
    b.asm.mov_imm(Reg::Rsi, 4096);
    wrapper0(&mut b, "munmap");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    wrapper0(&mut b, "close");
    b.asm.mov_imm(Reg::Rdi, 0);
    wrapper0(&mut b, "exit_group");
    b.data_object("st", &[0u8; 64]);
    b.data_object("buf", &[0u8; 64]);
    b.data_object("tipath", b"/usr/share/terminfo/x/xterm\0");
    b.data_object("esc", b"\x1b[H\x1b[2J\0");
    b.finish()
}

/// Installs all five utilities and their input files.
pub fn install_coreutils(vfs: &mut Vfs) {
    install_home(vfs);
    build_pwd().install(vfs);
    build_touch().install(vfs);
    build_ls().install(vfs);
    build_cat().install(vfs);
    build_clear().install(vfs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_loader::boot_kernel;

    #[test]
    fn all_coreutils_run_to_exit_zero() {
        for path in COREUTILS {
            let mut k = boot_kernel();
            install_coreutils(&mut k.vfs);
            let pid = k.spawn(path, &[path.to_string()], &[], None).unwrap();
            let exit = k.run(50_000_000_000);
            assert_eq!(exit, sim_kernel::RunExit::AllExited, "{path}");
            let p = k.process(pid).unwrap();
            assert_eq!(p.exit_status, Some(0), "{path}: {}", p.output_string());
        }
    }

    #[test]
    fn pwd_prints_cwd() {
        let mut k = boot_kernel();
        install_coreutils(&mut k.vfs);
        let pid = k.spawn("/usr/bin/pwd-sim", &[], &[], None).unwrap();
        k.run(50_000_000_000);
        let out = k.process(pid).unwrap().output_string();
        assert!(out.starts_with('/'), "got {out:?}");
    }

    #[test]
    fn cat_copies_file_contents() {
        let mut k = boot_kernel();
        install_coreutils(&mut k.vfs);
        let pid = k.spawn("/usr/bin/cat-sim", &[], &[], None).unwrap();
        k.run(50_000_000_000);
        let out = k.process(pid).unwrap().output_string();
        assert_eq!(out, "alpha file contents\n");
    }

    #[test]
    fn ls_lists_directory_entries() {
        let mut k = boot_kernel();
        install_coreutils(&mut k.vfs);
        let pid = k.spawn("/usr/bin/ls-sim", &[], &[], None).unwrap();
        k.run(50_000_000_000);
        let out = k.process(pid).unwrap().output_string();
        assert!(out.contains("a.txt"), "got {out:?}");
        assert!(out.contains("notes.md"), "got {out:?}");
    }

    #[test]
    fn touch_creates_file() {
        let mut k = boot_kernel();
        install_coreutils(&mut k.vfs);
        k.spawn("/usr/bin/touch-sim", &[], &[], None).unwrap();
        k.run(50_000_000_000);
        assert!(k.vfs.exists("/home/user/touched.txt"));
    }

    #[test]
    fn ls_startup_exceeds_100_syscalls() {
        let mut k = boot_kernel();
        install_coreutils(&mut k.vfs);
        let pid = k.spawn("/usr/bin/ls-sim", &[], &[], None).unwrap();
        k.run(50_000_000_000);
        let p = k.process(pid).unwrap();
        assert!(
            p.stats.syscalls_before_interposer > 100,
            "got {}",
            p.stats.syscalls_before_interposer
        );
    }
}
