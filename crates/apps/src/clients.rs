//! Load generators: wrk-sim (HTTP) and redis-bench-sim (pipelined GETs).
//!
//! Like the paper's setup, clients run natively (uninterposed) on the same
//! machine as the servers and talk over loopback (§6.2.2).
//!
//! Binary configs:
//!
//! * `/etc/wrk-sim.conf`: `[reqs_lo, reqs_hi, work, resp64, port_lo, port_hi]`
//!   (`resp64` = expected response bytes / 64)
//! * `/etc/redis-bench-sim.conf`: `[batches_lo, batches_hi, work, batch]`

use sim_isa::Reg;
use sim_loader::{ImageBuilder, SimElf, LIBC_PATH};

/// Builds wrk-sim.
pub fn build_wrk() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/wrk-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // config
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    // connect
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rsi, Reg::R11, 4);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 5);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::Rsi, Reg::Rcx);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("connect");
    // request count (u16)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);

    b.asm.label("req_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 64);
    b.call_import("write");
    // read until the whole response (cfg[3] * 64 bytes) has arrived
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rbx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rbx, 6);
    b.asm.label("recv_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 8192);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_dead");
    b.asm.sub_reg(Reg::Rbx, Reg::Rax);
    b.asm.cmp_imm(Reg::Rbx, 0);
    b.asm.jcc(sim_isa::Cond::G, "recv_loop");
    // response-handling work
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 2);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("work_done");
    b.asm.label("work_loop");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("work_loop");
    b.asm.label("work_done");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("req_loop");
    b.asm.label("conn_dead");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("exit_group");

    b.data_object("cfg", &[0u8; 16]);
    b.data_object("cfg_path", b"/etc/wrk-sim.conf\0");
    b.data_object("reqbuf", b"GET / HTTP/1.1\r\nHost: sim\r\nConnection: keep-alive\r\n\r\n\0\0\0\0\0\0\0\0\0\0");
    b.data_object("respbuf", &[0u8; 8192]);
    b.finish()
}

/// Builds redis-bench-sim.
pub fn build_redis_bench() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/redis-bench-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, super::servers::REDIS_PORT);
    b.call_import("connect");
    // batches (u16)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);

    b.asm.label("batch_loop");
    // send batch * 32 request bytes in one write (pipelining)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rdx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rdx, 5);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.call_import("write");
    // collect batch * 64 response bytes
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rbx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rbx, 6);
    b.asm.label("recv_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 4096);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_dead");
    b.asm.sub_reg(Reg::Rbx, Reg::Rax);
    b.asm.cmp_imm(Reg::Rbx, 0);
    b.asm.jcc(sim_isa::Cond::G, "recv_loop");
    // client-side bookkeeping work
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 2);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("work_done");
    b.asm.label("work_loop");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("work_loop");
    b.asm.label("work_done");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("batch_loop");
    b.asm.label("conn_dead");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("exit_group");

    b.data_object("cfg", &[0u8; 16]);
    b.data_object("cfg_path", b"/etc/redis-bench-sim.conf\0");
    b.data_object("reqbuf", &vec![b'G'; 2048]);
    b.data_object("respbuf", &[0u8; 4096]);
    b.finish()
}

/// Installs both load generators.
pub fn install_clients(vfs: &mut sim_kernel::Vfs) {
    build_wrk().install(vfs);
    build_redis_bench().install(vfs);
}
