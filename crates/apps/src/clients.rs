//! Load generators: wrk-sim (HTTP) and redis-bench-sim (pipelined GETs).
//!
//! Like the paper's setup, clients run natively (uninterposed) on the same
//! machine as the servers and talk over loopback (§6.2.2).
//!
//! Binary configs:
//!
//! * `/etc/wrk-sim.conf`: `[reqs_lo, reqs_hi, work, resp64, port_lo, port_hi]`
//!   (`resp64` = expected response bytes / 64)
//! * `/etc/redis-bench-sim.conf`: `[batches_lo, batches_hi, work, batch]`

use sim_isa::Reg;
use sim_loader::{ImageBuilder, SimElf, LIBC_PATH};

/// Builds wrk-sim.
pub fn build_wrk() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/wrk-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // config
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    // connect
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rsi, Reg::R11, 4);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 5);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::Rsi, Reg::Rcx);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("connect");
    // request count (u16)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);

    b.asm.label("req_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 64);
    b.call_import("write");
    // read until the whole response (cfg[3] * 64 bytes) has arrived
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rbx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rbx, 6);
    b.asm.label("recv_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 8192);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_dead");
    b.asm.sub_reg(Reg::Rbx, Reg::Rax);
    b.asm.cmp_imm(Reg::Rbx, 0);
    b.asm.jcc(sim_isa::Cond::G, "recv_loop");
    // response-handling work
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 2);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("work_done");
    b.asm.label("work_loop");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("work_loop");
    b.asm.label("work_done");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("req_loop");
    b.asm.label("conn_dead");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("exit_group");

    b.data_object("cfg", &[0u8; 16]);
    b.data_object("cfg_path", b"/etc/wrk-sim.conf\0");
    b.data_object("reqbuf", b"GET / HTTP/1.1\r\nHost: sim\r\nConnection: keep-alive\r\n\r\n\0\0\0\0\0\0\0\0\0\0");
    b.data_object("respbuf", &[0u8; 8192]);
    b.finish()
}

/// Builds redis-bench-sim.
pub fn build_redis_bench() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/redis-bench-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("openat");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import("read");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.call_import("socket");
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rsi, super::servers::REDIS_PORT);
    b.call_import("connect");
    // batches (u16)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);

    b.asm.label("batch_loop");
    // send batch * 32 request bytes in one write (pipelining)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rdx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rdx, 5);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.call_import("write");
    // collect batch * 64 response bytes
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rbx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rbx, 6);
    b.asm.label("recv_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 4096);
    b.call_import("read");
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jz("conn_dead");
    b.asm.sub_reg(Reg::Rbx, Reg::Rax);
    b.asm.cmp_imm(Reg::Rbx, 0);
    b.asm.jcc(sim_isa::Cond::G, "recv_loop");
    // client-side bookkeeping work
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 2);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("work_done");
    b.asm.label("work_loop");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("work_loop");
    b.asm.label("work_done");
    b.asm.sub_imm(Reg::R13, 1);
    b.asm.jnz("batch_loop");
    b.asm.label("conn_dead");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import("close");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import("exit_group");

    b.data_object("cfg", &[0u8; 16]);
    b.data_object("cfg_path", b"/etc/redis-bench-sim.conf\0");
    b.data_object("reqbuf", &vec![b'G'; 2048]);
    b.data_object("respbuf", &[0u8; 4096]);
    b.finish()
}

/// Builds loadgen-sim: the connection-scale generator for the simscale
/// sweep. It opens `conns` connections up front (the concurrent-connection
/// population the server must multiplex), writes `/data/connected` as the
/// phase marker the harness times from, then issues `reqs` synchronous
/// 64-byte requests round-robin over the first `active` connections —
/// the rest stay idle, which is what separates readiness multiplexing
/// from busy-polling. With `record` set, every received byte is appended
/// to `/data/rx.log` so two server variants can be compared byte-for-byte.
///
/// Config `/etc/loadgen-sim.conf`:
/// `[conns_lo, conns_hi, reqs_lo, reqs_hi, port_lo, port_hi, resp64,
///   active_lo, active_hi, record, work, 0...]`
pub fn build_loadgen() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/loadgen-sim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // config
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import_via("openat", Reg::R11);
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.label("cfg_rd");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "cfg");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import_via("read", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("cfg_rd"); // injected errno: retry
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.call_import_via("close", Reg::R11);
    // r12 = record fd, or -1 when not recording
    b.asm.mov_imm(Reg::R12, (-1i64) as u64);
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 9);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("rec_done");
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "rx_path");
    b.asm.mov_imm(Reg::Rdx, 0x40); // O_CREAT
    b.call_import_via("openat", Reg::R11);
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.label("rec_done");
    // r15 = port, r13 = conns
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R15, Reg::R11, 4);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 5);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R15, Reg::Rcx);
    b.asm.load_byte(Reg::R13, Reg::R11, 0);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 1);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);
    // Open every connection up front (blocking: a full accept backlog
    // parks us until the server drains it).
    b.asm.mov_imm(Reg::Rbx, 0);
    b.asm.label("conn_loop");
    b.call_import_via("socket", Reg::R11);
    b.asm.mov_reg(Reg::Rbp, Reg::Rax);
    b.asm.lea_label(Reg::R11, "cfds");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.store(Reg::R11, 0, Reg::Rbp);
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.asm.mov_reg(Reg::Rsi, Reg::R15);
    b.call_import_via("connect", Reg::R11);
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_reg(Reg::Rbx, Reg::R13);
    b.asm.jl("conn_loop");
    // Marker: the measured load phase starts here.
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "marker_path");
    b.asm.mov_imm(Reg::Rdx, 0x40); // O_CREAT
    b.call_import_via("openat", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::Rax);
    b.call_import_via("close", Reg::R11);
    // r9 = stats fd; stamp the load-phase start time so the harness can
    // measure the request phase exactly (chunked execution only observes
    // chunk boundaries).
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "stats_path");
    b.asm.mov_imm(Reg::Rdx, 0x40); // O_CREAT
    b.call_import_via("openat", Reg::R11);
    b.asm.mov_reg(Reg::R9, Reg::Rax);
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.lea_label(Reg::Rsi, "tsbuf");
    b.call_import_via("clock_gettime", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::R9);
    b.asm.lea_label(Reg::Rsi, "tsbuf");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import_via("write", Reg::R11);
    // r14 = requests, r13 = active window
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R14, Reg::R11, 2);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 3);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R14, Reg::Rcx);
    b.asm.load_byte(Reg::R13, Reg::R11, 7);
    b.asm.load_byte(Reg::Rcx, Reg::R11, 8);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.add_reg(Reg::R13, Reg::Rcx);
    b.asm.mov_imm(Reg::Rbx, 0);

    b.asm.label("req_loop");
    b.asm.lea_label(Reg::R11, "cfds");
    b.asm.mov_reg(Reg::Rcx, Reg::Rbx);
    b.asm.shl_imm(Reg::Rcx, 3);
    b.asm.add_reg(Reg::R11, Reg::Rcx);
    b.asm.load(Reg::Rbp, Reg::R11, 0);
    b.asm.label("wr_req");
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.asm.lea_label(Reg::Rsi, "reqbuf");
    b.asm.mov_imm(Reg::Rdx, 64);
    b.call_import_via("write", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("wr_req");
    // r15 = response bytes outstanding (port is no longer needed)
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::R15, Reg::R11, 6);
    b.asm.shl_imm(Reg::R15, 6);
    b.asm.label("recv_loop");
    b.asm.mov_reg(Reg::Rdi, Reg::Rbp);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_imm(Reg::Rdx, 8192);
    b.call_import_via("read", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("recv_loop"); // injected errno: retry
    b.asm.jz("conn_dead");
    b.asm.mov_reg(Reg::R8, Reg::Rax);
    b.asm.cmp_imm(Reg::R12, 0);
    b.asm.jl("skip_rec");
    b.asm.label("rec_wr");
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "respbuf");
    b.asm.mov_reg(Reg::Rdx, Reg::R8);
    b.call_import_via("write", Reg::R11);
    b.asm.cmp_imm(Reg::Rax, 0);
    b.asm.jl("rec_wr"); // injected errno: the rx log must stay exact
    b.asm.label("skip_rec");
    b.asm.sub_reg(Reg::R15, Reg::R8);
    b.asm.cmp_imm(Reg::R15, 0);
    b.asm.jcc(sim_isa::Cond::G, "recv_loop");
    // response-handling work
    b.asm.lea_label(Reg::R11, "cfg");
    b.asm.load_byte(Reg::Rcx, Reg::R11, 10);
    b.asm.shl_imm(Reg::Rcx, 8);
    b.asm.test_reg(Reg::Rcx, Reg::Rcx);
    b.asm.jz("work_done");
    b.asm.label("work_loop");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("work_loop");
    b.asm.label("work_done");
    // next connection in the active window
    b.asm.add_imm(Reg::Rbx, 1);
    b.asm.cmp_reg(Reg::Rbx, Reg::R13);
    b.asm.jl("no_wrap");
    b.asm.mov_imm(Reg::Rbx, 0);
    b.asm.label("no_wrap");
    b.asm.sub_imm(Reg::R14, 1);
    b.asm.jnz("req_loop");
    // Stamp the load-phase end time, then exit clean.
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.lea_label(Reg::Rsi, "tsbuf");
    b.call_import_via("clock_gettime", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::R9);
    b.asm.lea_label(Reg::Rsi, "tsbuf");
    b.asm.mov_imm(Reg::Rdx, 16);
    b.call_import_via("write", Reg::R11);
    b.asm.mov_reg(Reg::Rdi, Reg::R9);
    b.call_import_via("close", Reg::R11);
    b.asm.mov_imm(Reg::Rdi, 0);
    b.call_import_via("exit_group", Reg::R11);
    b.asm.label("conn_dead");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.call_import_via("exit_group", Reg::R11);

    b.data_object("cfg", &[0u8; 16]);
    b.data_object("cfg_path", b"/etc/loadgen-sim.conf\0");
    b.data_object("marker_path", b"/data/connected\0");
    b.data_object("rx_path", b"/data/rx.log\0");
    b.data_object("stats_path", b"/data/loadgen.stats\0");
    b.data_object("tsbuf", &[0u8; 16]);
    b.data_object("cfds", &vec![0u8; super::servers::SCALE_MAX_CONNS * 8]);
    b.data_object("reqbuf", b"GET /scale HTTP/1.1\r\nHost: sim\r\nConnection: keep-alive\r\n\r\n\0\0\0\0\0\0");
    b.data_object("respbuf", &[0u8; 8192]);
    b.finish()
}

/// Installs the load generators.
pub fn install_clients(vfs: &mut sim_kernel::Vfs) {
    build_wrk().install(vfs);
    build_redis_bench().install(vfs);
    build_loadgen().install(vfs);
}
