//! # apps — the guest workloads
//!
//! Every application the paper evaluates, rebuilt as guest programs:
//! five coreutils ([`coreutils`]), the four macrobenchmark servers
//! ([`servers`]: nginx-sim, lighttpd-sim, redis-sim, sqlite-sim), the load
//! generators ([`clients`]: wrk-sim, redis-bench-sim), and the measurement
//! harness ([`workloads`]).

pub mod clients;
pub mod coreutils;
pub mod servers;
pub mod workloads;

pub use clients::{build_loadgen, build_redis_bench, build_wrk, install_clients};
pub use coreutils::{install_coreutils, COREUTILS, EXPECTED_SITES};
pub use servers::{
    build_epoll_server, build_lighttpd, build_nginx, build_poll_server, build_redis, build_sqlite,
    install_servers, EPOLL_PORT, POLL_PORT, SCALE_MAX_CONNS,
};
pub use workloads::{
    install_spec_config, run_macro, run_scale, run_sqlite, scale_spec, sqlite_cfg, table6_specs,
    MacroError, MacroResult, MacroSpec, ScaleRun, CONNECTED_MARKER, RX_LOG,
};

/// Installs every application and its data into a VFS.
pub fn install_world(vfs: &mut sim_kernel::Vfs) {
    coreutils::install_coreutils(vfs);
    servers::install_servers(vfs);
    clients::install_clients(vfs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use interpose::Native;
    use sim_loader::boot_kernel;

    #[test]
    fn nginx_serves_wrk_natively() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let specs = table6_specs(100); // small request counts
        let spec = &specs[0];
        let res = run_macro(&mut k, &Native, spec, 2_000_000_000_000).expect("macro run");
        assert!(res.requests >= 8);
        assert!(res.cycles > 0);
        assert!(res.throughput() > 0.0);
    }

    #[test]
    fn nginx_multi_worker_serves_all_clients() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let specs = table6_specs(100);
        let spec = &specs[2]; // 10 workers
        assert_eq!(spec.clients, 10);
        let res = run_macro(&mut k, &Native, spec, 2_000_000_000_000).expect("macro run");
        assert_eq!(res.requests, spec.total_requests);
    }

    #[test]
    fn lighttpd_and_4kb_responses_work() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let specs = table6_specs(100);
        let spec = &specs[5]; // lighttpd 1 worker 4KB
        let res = run_macro(&mut k, &Native, spec, 2_000_000_000_000).expect("macro run");
        assert!(res.cycles > 0);
    }

    #[test]
    fn redis_single_and_six_io_threads() {
        for idx in [8usize, 9] {
            let mut k = boot_kernel();
            install_world(&mut k.vfs);
            let specs = table6_specs(100);
            let spec = &specs[idx];
            let res =
                run_macro(&mut k, &Native, spec, 2_000_000_000_000).unwrap_or_else(|e| {
                    panic!("{}: {e:?}", spec.name);
                });
            assert_eq!(res.requests, spec.total_requests, "{}", spec.name);
        }
    }

    #[test]
    fn epoll_server_serves_scaled_load() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let spec = scale_spec(true, 1, 64, 16, 128, 2, 2, true);
        let run = run_scale(&mut k, &Native, &spec, 2_000_000_000_000).expect("scale run");
        assert_eq!(run.requests, 128);
        assert!(run.t1 > run.t0);
        // Every response was recorded: 128 requests x 2x64 bytes.
        assert_eq!(k.vfs.read_file(CONNECTED_MARKER).map(|f| f.len()).ok(), Some(0));
        assert_eq!(k.vfs.read_file(RX_LOG).map(|f| f.len()).ok(), Some(128 * 128));
    }

    #[test]
    fn epoll_server_prefork_workers_share_listener() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let spec = scale_spec(true, 4, 32, 32, 96, 1, 2, true);
        let run = run_scale(&mut k, &Native, &spec, 2_000_000_000_000).expect("scale run");
        assert_eq!(run.requests, 96);
        assert_eq!(k.vfs.read_file(RX_LOG).map(|f| f.len()).ok(), Some(96 * 64));
    }

    #[test]
    fn poll_server_serves_identical_byte_stream() {
        let stream = |epoll: bool| {
            let mut k = boot_kernel();
            install_world(&mut k.vfs);
            let spec = scale_spec(epoll, 1, 48, 8, 64, 3, 2, true);
            run_scale(&mut k, &Native, &spec, 2_000_000_000_000).expect("scale run");
            k.vfs.read_file(RX_LOG).expect("rx log").to_vec()
        };
        let ep = stream(true);
        let po = stream(false);
        assert_eq!(ep.len(), 64 * 192);
        // Same response protocol, different multiplexing: the client-side
        // byte stream must not be able to tell the variants apart.
        assert_eq!(ep, po);
    }

    #[test]
    fn sqlite_completes() {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        let cycles = run_sqlite(&mut k, &Native, &sqlite_cfg(20), 2_000_000_000_000).unwrap();
        assert!(cycles > 0);
        assert!(k.vfs.exists("/data/test.db"));
    }

    #[test]
    fn bigger_responses_cost_more_cycles_per_request() {
        // 0 KB vs 4 KB nginx: absolute throughput must drop with size, as
        // in Table 6's native column.
        let thr = |idx: usize| {
            let mut k = boot_kernel();
            install_world(&mut k.vfs);
            let specs = table6_specs(50);
            run_macro(&mut k, &Native, &specs[idx], 2_000_000_000_000)
                .unwrap()
                .throughput()
        };
        let t0 = thr(0);
        let t4 = thr(1);
        assert!(t4 < t0, "0KB {t0:.1} vs 4KB {t4:.1}");
    }
}
