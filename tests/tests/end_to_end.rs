//! Cross-crate integration: applications behave identically under every
//! interposer, and the machine is fully deterministic.

use interpose::{Interposer, Native, PtraceInterposer, SudInterposer};
use k23::{OfflineSession, Variant, K23};
use lazypoline::Lazypoline;
use sim_loader::boot_kernel;
use zpoline::Zpoline;

fn interposers() -> Vec<Box<dyn Interposer>> {
    vec![
        Box::new(Native),
        Box::new(SudInterposer::new()),
        Box::new(PtraceInterposer::new()),
        Box::new(Zpoline::default_variant()),
        Box::new(Zpoline::ultra()),
        Box::new(Lazypoline::new()),
        Box::new(K23::new(Variant::Default)),
        Box::new(K23::new(Variant::Ultra)),
        Box::new(K23::new(Variant::UltraPlus)),
    ]
}

/// Output of an app must be identical under every mechanism: interposition
/// is transparent.
#[test]
fn coreutils_output_identical_under_all_interposers() {
    for app in ["/usr/bin/pwd-sim", "/usr/bin/cat-sim", "/usr/bin/ls-sim"] {
        let mut expected: Option<String> = None;
        for ip in interposers() {
            let mut k = boot_kernel();
            apps::install_world(&mut k.vfs);
            ip.install(&mut k);
            let pid = ip
                .spawn(&mut k, app, &[app.to_string()], &[])
                .unwrap_or_else(|e| panic!("{app} under {}: {e}", ip.label()));
            k.run(1_000_000_000_000);
            let p = k.process(pid).expect("proc");
            assert_eq!(p.exit_status, Some(0), "{app} under {}", ip.label());
            let out = p.output_string();
            match &expected {
                None => expected = Some(out),
                Some(e) => assert_eq!(&out, e, "{app} under {}", ip.label()),
            }
        }
    }
}

/// The simulator is deterministic: identical runs produce identical clocks.
#[test]
fn identical_runs_produce_identical_clocks() {
    let run = || {
        let mut k = boot_kernel();
        apps::install_world(&mut k.vfs);
        let ip = K23::new(Variant::Ultra);
        ip.install(&mut k);
        let pid = ip.spawn(&mut k, "/usr/bin/ls-sim", &[], &[]).unwrap();
        k.run(1_000_000_000_000);
        (k.clock, k.process(pid).unwrap().stats.syscalls)
    };
    assert_eq!(run(), run());
}

/// K23's full pipeline on a real app: offline then online, exhaustive.
#[test]
fn k23_full_pipeline_on_cat() {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let session = OfflineSession::new(&mut k, "/usr/bin/cat-sim");
    session.run_once(&mut k, &[], &[], 1_000_000_000_000).unwrap();
    let log = session.finish(&mut k);
    assert_eq!(log.len(), 11, "cat's Table 2 site count");

    let k23 = K23::new(Variant::UltraPlus);
    k23.install(&mut k);
    let pid = k23.spawn(&mut k, "/usr/bin/cat-sim", &[], &[]).unwrap();
    k.run(1_000_000_000_000);
    let p = k.process(pid).unwrap();
    assert_eq!(p.exit_status, Some(0));
    assert_eq!(p.output_string(), "alpha file contents\n");
    assert_eq!(k23.stats().rewritten.len(), 11);
    assert_eq!(k23.interposed_count(&k, pid), p.stats.syscalls);
}

/// The strace use case: ptrace sees exactly what the kernel executed.
#[test]
fn ptrace_trace_is_complete() {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let ip = PtraceInterposer::new();
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, "/usr/bin/clear-sim", &[], &[]).unwrap();
    k.run(1_000_000_000_000);
    let p = k.process(pid).unwrap();
    assert_eq!(p.exit_status, Some(0));
    assert_eq!(ip.interposed_count(&k, pid), p.stats.syscalls);
}
