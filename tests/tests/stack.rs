//! Interposer-stack integration: a single passthrough layer is
//! observationally invisible (byte-identical event streams and outcomes
//! across engines), the composed fault matrix verdicts are pinned — with
//! the nested-sigreturn failure demonstrably composition-only — and the
//! per-layer fork/execve propagation counts are exact.

use pitfalls::fault::{plan_for, run_probe, run_probe_on, ProbeRun, Scenario};
use pitfalls::stack::{full_stack_matrix, probe_propagation, render_stack_matrix};
use proptest::prelude::*;
use sim_fault::FaultPlan;
use sim_kernel::EngineConfig;
use sim_obs::ObsConfig;

/// Runs the fault probe under `spec`, traced, on the chosen engine.
fn traced(spec: &str, plan: Option<&FaultPlan>, cfg: EngineConfig) -> (String, ProbeRun) {
    sim_obs::enable(ObsConfig::default());
    let run = run_probe_on(spec, plan, cfg);
    let rec = sim_obs::disable().expect("recorder");
    (rec.chrome_trace_json(), run)
}

proptest! {
    /// A stack of exactly one `passthrough` layer (zero overhead, no
    /// span) is byte-identical to the bare mechanism — same obs event
    /// stream, exit, output, and final clock — on the stepwise oracle
    /// and the trace engine, with and without an injected fault plan.
    #[test]
    fn passthrough_stack_is_invisible(seed in any::<u64>(), mech_idx in 0usize..2, faulted in any::<bool>()) {
        let mech = ["zpoline", "sud"][mech_idx];
        let spec = format!("{mech}+passthrough");
        let plan = if faulted {
            let baseline = run_probe(mech, None);
            Some(plan_for(Scenario::Errno, seed, &baseline))
        } else {
            None
        };
        for cfg in [EngineConfig::stepwise(), EngineConfig::traced()] {
            let (bare_json, bare_run) = traced(mech, plan.as_ref(), cfg.clone());
            let (stack_json, stack_run) = traced(&spec, plan.as_ref(), cfg);
            prop_assert_eq!(&bare_run, &stack_run, "{}: outcomes diverge", mech);
            prop_assert_eq!(&bare_json, &stack_json, "{}: event streams diverge", mech);
        }
    }
}

/// The composed matrix verdicts at the default seed are pinned: the
/// signal scenario kills exactly the naive-recorder stacks plus the
/// stacks whose *base* already dies under it, and only the recorder
/// failures are composition-only. Sweeping twice renders byte-identical
/// text (the `simstack --smoke` determinism contract).
#[test]
fn stack_matrix_verdicts_are_pinned() {
    let cells = full_stack_matrix(7);
    for c in &cells {
        let expect_fail = c.scenario == Scenario::Signal
            && matches!(
                c.spec,
                "zpoline+recorder" | "ptrace+recorder" | "k23+tracer" | "sud+sandbox"
            );
        assert_eq!(
            c.survived, !expect_fail,
            "{} × {:?}: got survived={}",
            c.spec, c.scenario, c.survived
        );
        // The recorder deaths are composition-only (bare zpoline and
        // bare ptrace survive the same signal plan); the k23/sud deaths
        // are inherited from the base mechanism.
        assert_eq!(
            c.composition_only(),
            matches!(c.spec, "zpoline+recorder" | "ptrace+recorder")
                && c.scenario == Scenario::Signal,
            "{} × {:?}: composition_only miscomputed",
            c.spec,
            c.scenario
        );
    }
    let again = full_stack_matrix(7);
    assert_eq!(render_stack_matrix(7, &cells), render_stack_matrix(7, &again));
}

/// The nested-sigreturn hazard cell replays identically across the block
/// engine, the stepwise oracle, and the trace engine — including the
/// deterministic SIGSEGV death (exit 139).
#[test]
fn hazard_cell_is_identical_across_engines() {
    let baseline = run_probe("zpoline+recorder", None);
    let plan = plan_for(Scenario::Signal, 7, &baseline);
    let block = run_probe_on("zpoline+recorder", Some(&plan), EngineConfig::new());
    let stepwise = run_probe_on("zpoline+recorder", Some(&plan), EngineConfig::stepwise());
    let trace = run_probe_on("zpoline+recorder", Some(&plan), EngineConfig::traced());
    assert_eq!(block, stepwise);
    assert_eq!(block, trace);
    assert_eq!(block.exit, Some(139), "modeled hazard is a SIGSEGV kill");
    // The same plan through the safe recorder survives on all engines.
    let safe_base = run_probe("zpoline+tracer+recorder-safe", None);
    let safe_plan = plan_for(Scenario::Signal, 7, &safe_base);
    let safe = run_probe("zpoline+tracer+recorder-safe", Some(&safe_plan));
    assert_eq!(safe.exit, safe_base.exit);
    assert_eq!(safe.output, safe_base.output);
}

/// Per-layer fork/execve propagation, measured on the P1a parent/victim
/// pair: a tracer follows a K23-covered victim across the env-clearing
/// exec (all 10 marker syscalls chained), a recorder stops at the exec
/// boundary (its one victim-pid entry is the pre-exec `execve` itself),
/// and under zpoline the base loses its handler library so the whole
/// chain goes inert in the victim.
#[test]
fn propagation_counts_are_exact() {
    let cases = [
        ("k23+tracer", 3, 10, 0),
        ("k23+tracer+recorder", 3, 10, 1),
        ("zpoline+tracer", 3, 0, 0),
        ("zpoline+recorder", 0, 0, 1),
    ];
    for (spec, parent_traced, victim_traced, victim_recorded) in cases {
        let p = probe_propagation(spec);
        assert_eq!(
            (p.parent_traced, p.victim_traced, p.victim_recorded),
            (parent_traced, victim_traced, victim_recorded),
            "{spec}: propagation counts drifted"
        );
    }
}

/// Layers with spans enabled attribute their wrapper time: a traced run
/// under `sud+tracer` carries `stack/tracer` span events; the bare
/// mechanism's stream has none.
#[test]
fn stack_layers_emit_spans() {
    let (stack_json, _) = traced("sud+tracer", None, EngineConfig::new());
    assert!(
        stack_json.contains("stack/tracer"),
        "composed run should emit per-layer spans"
    );
    let (bare_json, _) = traced("sud", None, EngineConfig::new());
    assert!(!bare_json.contains("stack/"));
}

/// The audit ledger's per-layer accounting mirrors the propagation
/// probes exactly: under `k23+tracer+recorder` the P1a victim keeps the
/// tracer (exec propagation on) but sheds the recorder (exec propagation
/// off), so after its single pre-exec chained syscall the victim's
/// `layer_hits` accrue to the tracer alone — while the parent, which
/// never exec'd, chains through both layers. The exec event itself lands
/// in the ledger's `note_exec` path: K23 re-attaches, so the victim
/// shows no `P1a-exec` bypasses despite the env-cleared image.
#[test]
fn audit_ledger_tracks_per_layer_propagation_masks() {
    use interpose::{Interposer, InterposerStack};
    use sim_kernel::Signature;

    pitfalls::register_all();
    let stack = InterposerStack::from_spec("k23+tracer+recorder").expect("composed spec");
    let mut k = sim_loader::boot_kernel();
    pitfalls::install_pocs(&mut k.vfs);
    let session = k23::OfflineSession::new(&mut k, "/usr/bin/p1a-parent");
    let _ = session.run_once(
        &mut k,
        &["/usr/bin/p1a-parent".to_string()],
        &[],
        u64::MAX / 4,
    );
    session.finish(&mut k);
    k.configure(EngineConfig::new().audit(stack.coverage()));
    stack.install(&mut k);
    let parent = stack
        .spawn(
            &mut k,
            "/usr/bin/p1a-parent",
            &["/usr/bin/p1a-parent".to_string()],
            &[],
        )
        .expect("spawn p1a-parent");
    k.run(u64::MAX / 4);
    let ledger = k.audit_ledger().expect("audit configured");
    // The offline phase ran an unaudited parent/victim pair before the
    // session was configured; pick the victim the ledger actually saw.
    let victim = k
        .pids()
        .into_iter()
        .find(|pid| {
            ledger.per_proc.contains_key(pid)
                && k.process(*pid)
                    .is_some_and(|p| p.exe == "/usr/bin/p1-victim")
        })
        .expect("audited exec'd victim present");

    let pa = &ledger.per_proc[&parent];
    assert!(pa.chained > 0, "parent syscalls chain through the stack");
    assert_eq!(pa.layer_hits["tracer"], pa.chained);
    assert_eq!(pa.layer_hits["recorder"], pa.chained);

    let va = &ledger.per_proc[&victim];
    assert!(
        va.layer_hits["tracer"] >= 10,
        "tracer follows the exec (saw {})",
        va.layer_hits["tracer"]
    );
    assert_eq!(
        va.layer_hits["tracer"], va.chained,
        "the tracer participates in every chained victim syscall"
    );
    assert_eq!(
        va.layer_hits["recorder"], 1,
        "the recorder sees only the victim's single pre-exec chained \
         syscall; the exec mask strips it afterwards"
    );
    assert_eq!(
        va.bypassed_by(Signature::ExecGap),
        0,
        "the K23 base follows the exec, so no P1a shadow"
    );
    assert_eq!(va.coverage_permille(), 1000);
}

/// `interposed_count` must not double-count syscalls when two entries of
/// the symbol list resolve to the same forwarding site (two layers — or
/// aliases — sharing one symbol).
#[test]
fn interposed_count_dedupes_shared_sites() {
    pitfalls::register_all();
    let mut k = sim_loader::boot_kernel();
    pitfalls::fault::build_fault_probe().install(&mut k.vfs);
    let ip = interpose::by_name_spec("sud").expect("registered");
    ip.install(&mut k);
    let pid = ip
        .spawn(
            &mut k,
            pitfalls::fault::PROBE_PATH,
            &[pitfalls::fault::PROBE_PATH.to_string()],
            &[],
        )
        .expect("spawns");
    k.run(u64::MAX / 4);
    let syms = ip.forward_symbols();
    let once = interpose::count_at_symbols(&k, pid, &syms);
    assert!(once > 0, "probe syscalls are interposed under SUD");
    let mut doubled = syms.clone();
    doubled.extend(syms.iter().cloned());
    assert_eq!(once, interpose::count_at_symbols(&k, pid, &doubled));
    assert_eq!(once, ip.interposed_count(&k, pid));
}
