//! Audit-ledger integration: the kernel's coverage ledger classifies the
//! known shadows with the right pitfall signatures (exec gaps → P1a, SUD
//! disarm → P1b, vDSO reads attributed only to mechanisms that leave the
//! vDSO in place), is byte-identical across all three engines, and stays
//! entirely absent when no audit session is configured.

use bench::audit::{run_cell, COREUTIL};
use pitfalls::{signature_pitfall, Pitfall};
use sim_kernel::{EngineConfig, RunExit, Signature};
use sim_loader::boot_kernel;

/// The hostile workload's execve gap classifies as `P1a-exec` for a
/// preload mechanism (the env-cleared victim sheds `libzpoline.so`),
/// while K23's kernel-side rewriting follows the exec: zero exec-gap
/// bypasses and full coverage.
#[test]
fn exec_gap_classifies_as_p1a_for_preload_but_not_k23() {
    let zp = run_cell("zpoline", "hostile", EngineConfig::new()).totals();
    assert!(
        zp.bypassed_by(Signature::ExecGap) > 0,
        "zpoline's env-cleared victim must surface as an exec gap"
    );
    assert_eq!(signature_pitfall(Signature::ExecGap), Some(Pitfall::P1a));

    let k23 = run_cell("k23", "hostile", EngineConfig::new()).totals();
    assert_eq!(
        k23.bypassed_by(Signature::ExecGap),
        0,
        "K23 must follow the exec"
    );
    assert_eq!(
        k23.coverage_permille(),
        1000,
        "K23 covers the full hostile workload, got {}",
        k23.coverage_permille()
    );
}

/// The P1b PoC's `prctl(PR_SYS_DISPATCH_OFF)` surfaces as the
/// `P1b-sudoff` signature on a bare SUD run — syscalls issued after the
/// disarm retire without the mechanism seeing them.
#[test]
fn sud_disarm_classifies_as_p1b() {
    let sud = run_cell("sud", "hostile", EngineConfig::new()).totals();
    assert!(
        sud.bypassed_by(Signature::SudOff) > 0,
        "post-disarm syscalls must classify as SudOff"
    );
    assert_eq!(signature_pitfall(Signature::SudOff), Some(Pitfall::P1b));
    assert_eq!(Signature::SudOff.code(), "P1b-sudoff");
}

/// vDSO reads are attributed as shadows only for mechanisms that leave
/// the vDSO mapped: zpoline misses the P2b PoC's `clock_gettime`, while
/// ptrace (spawns with the vDSO disabled) and K23 (claims vDSO coverage)
/// show none.
#[test]
fn vdso_shadow_attribution_respects_mechanism_claims() {
    let zp = run_cell("zpoline", "hostile", EngineConfig::new()).totals();
    assert_eq!(
        zp.bypassed_by(Signature::Vdso),
        1,
        "exactly the PoC's one vDSO clock read"
    );
    for covered in ["ptrace", "k23"] {
        let t = run_cell(covered, "hostile", EngineConfig::new()).totals();
        assert_eq!(
            t.bypassed_by(Signature::Vdso),
            0,
            "{covered} must not attribute vDSO shadows"
        );
    }
}

/// The full ledger — per-process maps, bypass sites and all — is
/// identical across the block, stepwise, and trace engines: the audit
/// only consumes architectural state, so the engine choice is invisible
/// to it (the property that makes the committed matrix meaningful).
#[test]
fn ledger_is_identical_across_engines() {
    let block = run_cell("sud", "coreutil", EngineConfig::new());
    let stepwise = run_cell("sud", "coreutil", EngineConfig::stepwise());
    let traced = run_cell("sud", "coreutil", EngineConfig::traced());
    assert_eq!(block, stepwise, "block vs stepwise ledgers diverge");
    assert_eq!(block, traced, "block vs trace ledgers diverge");
    assert!(
        block.totals().total() > 0,
        "the compared ledgers must not be vacuously empty"
    );
}

/// A kernel with no audit session configured exposes no ledger — the
/// audit is strictly opt-in, matching the zero-overhead-off contract the
/// `simperf` gate enforces.
#[test]
fn no_session_means_no_ledger() {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let pid = k
        .spawn(COREUTIL, &[COREUTIL.to_string()], &[], None)
        .expect("spawn");
    let exit = k.run(u64::MAX / 4);
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    assert!(k.audit_ledger().is_none(), "no audit was configured");
}

/// Mechanism claims anchor the scale: an empty claim (native execution)
/// audits every syscall as `uncovered` at 0.0% coverage, while K23's
/// full claim audits the same coreutil at 100.0%.
#[test]
fn coverage_extremes_match_claims() {
    let native = run_cell("native", "coreutil", EngineConfig::new()).totals();
    assert_eq!(native.coverage_permille(), 0);
    assert_eq!(native.bypassed_by(Signature::Uncovered), native.total());

    let k23 = run_cell("k23", "coreutil", EngineConfig::new()).totals();
    assert_eq!(k23.coverage_permille(), 1000);
    assert_eq!(k23.bypassed_total(), 0);
}
