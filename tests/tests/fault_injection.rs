//! sim-fault integration: the same seeded [`FaultPlan`] is architectural —
//! both engines observe every injection at the identical instruction and
//! emit byte-identical event streams; a zero-fault plan is invisible to the
//! guest; and the fault-resilience matrix verdicts are pinned.

use pitfalls::fault::{
    build_fault_probe, full_fault_matrix, plan_for, run_probe, run_probe_on, Scenario, MECHANISMS,
    PROBE_PATH,
};
use proptest::prelude::*;
use sim_fault::FaultPlan;
use sim_kernel::EngineConfig;
use sim_obs::ObsConfig;

/// A plan combining every injection family, derived from the per-scenario
/// generators so it stays in step with the matrix.
fn combined_plan(seed: u64) -> FaultPlan {
    let baseline = run_probe("native", None);
    let mut plan = plan_for(Scenario::Errno, seed, &baseline);
    plan.signal_window = plan_for(Scenario::Signal, seed, &baseline).signal_window;
    plan.sched = plan_for(Scenario::Sched, seed, &baseline).sched;
    plan.perm_flips = plan_for(Scenario::PermFlip, seed, &baseline).perm_flips;
    plan
}

/// Runs the probe under `mech` with the plan, traced; returns the
/// architectural event stream plus the guest-visible outcome.
fn traced(mech: &str, plan: &FaultPlan, stepwise: bool) -> (String, Option<i64>, Vec<u8>, u64) {
    let base = if stepwise {
        EngineConfig::stepwise()
    } else {
        EngineConfig::new()
    };
    sim_obs::enable(ObsConfig::default());
    let run = run_probe_on(mech, Some(plan), base);
    let rec = sim_obs::disable().expect("recorder");
    (rec.chrome_trace_json(), run.exit, run.output, run.clock)
}

/// Same seed, same plan ⇒ byte-identical observability event streams under
/// the block engine and the stepwise oracle, for a plan that exercises
/// every injection family at once.
#[test]
fn same_seed_plan_streams_identical_across_engines() {
    let plan = combined_plan(7);
    for mech in ["zpoline", "sud"] {
        let (fast_json, fast_exit, fast_out, fast_clock) = traced(mech, &plan, false);
        let (ref_json, ref_exit, ref_out, ref_clock) = traced(mech, &plan, true);
        assert_eq!(fast_exit, ref_exit, "{mech}: exits diverge");
        assert_eq!(fast_out, ref_out, "{mech}: outputs diverge");
        assert_eq!(fast_clock, ref_clock, "{mech}: clocks diverge");
        assert_eq!(fast_json, ref_json, "{mech}: event streams diverge");
        assert!(
            fast_json.contains("fault-"),
            "{mech}: no injection event recorded — the plan never fired"
        );
    }
}

/// The same cell replayed from its encoded plan reproduces the identical
/// outcome — the one-command replay contract of `simfault`.
#[test]
fn encoded_plan_replays_identically() {
    let plan = combined_plan(7);
    let decoded = FaultPlan::decode(&plan.encode()).expect("round-trips");
    let a = run_probe("lazypoline", Some(&plan));
    let b = run_probe("lazypoline", Some(&decoded));
    assert_eq!(a, b);
}

proptest! {
    /// A zero-fault plan (any seed) is invisible: exit status, output, and
    /// final clock all match the no-plan run, under every mechanism.
    #[test]
    fn zero_fault_plan_is_guest_invisible(seed in any::<u64>(), mech_idx in 0usize..MECHANISMS.len()) {
        let mech = MECHANISMS[mech_idx];
        let plain = run_probe(mech, None);
        let zero = run_probe(mech, Some(&FaultPlan::zero(seed)));
        prop_assert_eq!(plain, zero);
    }
}

/// The fault-resilience matrix verdicts at the default seed, pinned.
///
/// The signal row is the load-bearing one: an asynchronous signal whose
/// handler issues `rt_sigreturn` is fatal under pure-SIGSYS interposition
/// (the emulated sigreturn pops the *interposer's* frame, not the
/// application's), while ptrace and binary rewriting forward it natively.
/// lazypoline dies on the first not-yet-rewritten handler site and K23's
/// offline phase never observes handler-only sites, so both inherit the
/// SUD fallback hazard.
#[test]
fn fault_matrix_verdicts_are_pinned() {
    let expected = |mech: &str, scenario: Scenario| match scenario {
        Scenario::Errno | Scenario::Sched | Scenario::PermFlip => true,
        Scenario::Signal => matches!(mech, "ptrace" | "zpoline"),
    };
    for cell in full_fault_matrix(7) {
        assert_eq!(cell.baseline_exit, Some(0), "{}: baseline must be clean", cell.mech);
        assert_eq!(
            cell.survived,
            expected(cell.mech, cell.scenario),
            "{} × {:?} flipped (replay: simfault --replay {} '{}')",
            cell.mech,
            cell.scenario,
            cell.mech,
            cell.plan.encode()
        );
    }
}

/// The probe image itself stays well-formed: entry symbol present and the
/// data objects land on the expected page.
#[test]
fn probe_image_exposes_symbols() {
    let img = build_fault_probe();
    assert_eq!(img.name, PROBE_PATH);
    assert!(img.symbols.contains_key("main"));
    assert!(img.symbols.contains_key("msg"));
    assert!(img.symbols.contains_key("sig_count"));
}
