//! Ablation: zpoline's disassembly strategy (DESIGN.md §4.3's trade-off).
//! The byte-pattern scan over-approximates (more corruption, no misses);
//! the linear sweep both misses and fabricates.

use interpose::Interposer;
use sim_loader::boot_kernel;
use zpoline::{ScanStrategy, Zpoline};

fn zp(scan: ScanStrategy) -> Zpoline {
    let mut z = Zpoline::default_variant();
    z.scan = scan;
    z
}

/// Both strategies interpose a clean stress loop correctly; the byte scan
/// rewrites at least as many sites as the sweep.
#[test]
fn byte_scan_is_superset_on_clean_code() {
    let mut counts = Vec::new();
    for scan in [ScanStrategy::LinearSweep, ScanStrategy::ByteScan] {
        let mut k = boot_kernel();
        apps::install_world(&mut k.vfs);
        let z = zp(scan);
        z.install(&mut k);
        let pid = z.spawn(&mut k, "/usr/bin/pwd-sim", &[], &[]).unwrap();
        k.run(1_000_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "{scan:?}");
        counts.push(z.stats().rewritten.len());
    }
    assert!(counts[1] >= counts[0], "bytescan {} < sweep {}", counts[1], counts[0]);
}

/// On an image with embedded data, the byte scan corrupts it (it rewrites
/// every 0f 05 match) — the maximal-P3a end of the trade-off.
#[test]
fn byte_scan_corrupts_embedded_data() {
    let mut k = boot_kernel();
    pitfalls::install_pocs(&mut k.vfs);
    let z = zp(ScanStrategy::ByteScan);
    z.install(&mut k);
    let pid = z.spawn(&mut k, "/usr/bin/p3a-poc", &[], &[]).unwrap();
    k.run(1_000_000_000_000);
    let p = k.process(pid).unwrap();
    assert_eq!(p.exit_status, Some(7), "embedded data must be corrupted");
}
