//! Ablations.
//!
//! 1. zpoline's disassembly strategy (DESIGN.md §4.3's trade-off): the
//!    byte-pattern scan over-approximates (more corruption, no misses);
//!    the linear sweep both misses and fabricates.
//! 2. The engine-mode matrix (DESIGN.md §10): stepwise × block × trace
//!    produce instruction-for-instruction identical streams — plain, under
//!    a fault plan, and with the profiler enabled — while throughput is
//!    monotonically non-decreasing across the three.

use std::time::Instant;

use bench::micro::{build_micro_app, MICRO_APP, MICRO_CFG};
use interpose::{Interposer, Native};
use pitfalls::fault::{plan_for, run_probe, run_probe_on, Scenario};
use sim_fault::{FaultKind, FaultPlan, SyscallFault};
use sim_kernel::{nr, EngineConfig, RunExit, TraceEntry};
use sim_loader::boot_kernel;
use zpoline::{ScanStrategy, Zpoline};

fn zp(scan: ScanStrategy) -> Zpoline {
    let mut z = Zpoline::default_variant();
    z.scan = scan;
    z
}

/// Both strategies interpose a clean stress loop correctly; the byte scan
/// rewrites at least as many sites as the sweep.
#[test]
fn byte_scan_is_superset_on_clean_code() {
    let mut counts = Vec::new();
    for scan in [ScanStrategy::LinearSweep, ScanStrategy::ByteScan] {
        let mut k = boot_kernel();
        apps::install_world(&mut k.vfs);
        let z = zp(scan);
        z.install(&mut k);
        let pid = z.spawn(&mut k, "/usr/bin/pwd-sim", &[], &[]).unwrap();
        k.run(1_000_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "{scan:?}");
        counts.push(z.stats().rewritten.len());
    }
    assert!(counts[1] >= counts[0], "bytescan {} < sweep {}", counts[1], counts[0]);
}

/// On an image with embedded data, the byte scan corrupts it (it rewrites
/// every 0f 05 match) — the maximal-P3a end of the trade-off.
#[test]
fn byte_scan_corrupts_embedded_data() {
    let mut k = boot_kernel();
    pitfalls::install_pocs(&mut k.vfs);
    let z = zp(ScanStrategy::ByteScan);
    z.install(&mut k);
    let pid = z.spawn(&mut k, "/usr/bin/p3a-poc", &[], &[]).unwrap();
    k.run(1_000_000_000_000);
    let p = k.process(pid).unwrap();
    assert_eq!(p.exit_status, Some(7), "embedded data must be corrupted");
}

// ===== Engine-mode matrix: stepwise × block × trace =====

/// The three engine configurations, oracle first.
fn engines() -> [(&'static str, EngineConfig); 3] {
    [
        ("stepwise", EngineConfig::stepwise()),
        ("block", EngineConfig::new()),
        ("trace", EngineConfig::traced()),
    ]
}

/// Runs the syscall-500 stress guest under `cfg`; returns the recorded
/// instruction stream (when `record`), final clock, exit status, and
/// host wall-clock seconds.
fn run_micro(
    cfg: EngineConfig,
    iters: u64,
    record: bool,
) -> (Vec<TraceEntry>, u64, Option<i64>, f64) {
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    k.vfs
        .write_file(MICRO_CFG, &iters.to_le_bytes())
        .expect("cfg");
    let ip = Native;
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    k.configure(cfg);
    if record {
        k.start_exec_trace();
    }
    let t0 = Instant::now();
    let exit = k.run(u64::MAX / 4);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(exit, RunExit::AllExited);
    let status = k.process(pid).expect("proc").exit_status;
    let stream = if record {
        k.take_exec_trace()
    } else {
        Vec::new()
    };
    (stream, k.clock, status, dt)
}

/// Asserts two engines' instruction streams are bit-identical.
fn assert_streams_equal(name: &str, got: &[TraceEntry], oracle: &[TraceEntry]) {
    assert_eq!(
        got.len(),
        oracle.len(),
        "{name}: stream length {} vs oracle {}",
        got.len(),
        oracle.len()
    );
    for (i, (g, o)) in got.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(g, o, "{name}: stream diverges at step {i}");
    }
}

/// Plain run: every engine's instruction stream, final clock, and exit
/// status match the stepwise oracle bit-for-bit.
#[test]
fn engine_matrix_streams_identical() {
    let mut oracle: Option<(Vec<TraceEntry>, u64, Option<i64>)> = None;
    for (name, cfg) in engines() {
        let (stream, clock, status, _) = run_micro(cfg, 5_000, true);
        assert!(stream.len() > 20_000, "{name}: stream too short");
        match &oracle {
            None => oracle = Some((stream, clock, status)),
            Some((ref_stream, ref_clock, ref_status)) => {
                assert_streams_equal(name, &stream, ref_stream);
                assert_eq!(clock, *ref_clock, "{name}: clock diverges");
                assert_eq!(status, *ref_status, "{name}: status diverges");
            }
        }
    }
}

/// Same matrix under a syscall fault plan: errno injections land at the
/// identical occurrence under every engine (the plan's occurrence counters
/// advance through the trace engine's direct-path syscall entry too).
#[test]
fn engine_matrix_streams_identical_under_fault_plan() {
    let mut plan = FaultPlan::zero(11);
    plan.syscall_faults = vec![
        SyscallFault {
            nr: nr::SYS_NONEXISTENT,
            occurrence: 7,
            kind: FaultKind::Eintr,
        },
        SyscallFault {
            nr: nr::SYS_NONEXISTENT,
            occurrence: 2_500,
            kind: FaultKind::Eagain,
        },
    ];
    let mut oracle: Option<(Vec<TraceEntry>, u64, Option<i64>)> = None;
    for (name, cfg) in engines() {
        let (stream, clock, status, _) = run_micro(cfg.fault(plan.clone()), 5_000, true);
        match &oracle {
            None => oracle = Some((stream, clock, status)),
            Some((ref_stream, ref_clock, ref_status)) => {
                assert_streams_equal(name, &stream, ref_stream);
                assert_eq!(clock, *ref_clock, "{name}: clock diverges");
                assert_eq!(status, *ref_status, "{name}: status diverges");
            }
        }
    }
}

/// The fault-resilience probe under a combined plan (errno + signals +
/// scheduler perturbation) through zpoline's rewritten trampolines: all
/// three engines agree on the guest-visible outcome and final clock.
#[test]
fn engine_matrix_agrees_on_fault_probe() {
    let baseline = run_probe("native", None);
    let mut plan = plan_for(Scenario::Errno, 7, &baseline);
    plan.signal_window = plan_for(Scenario::Signal, 7, &baseline).signal_window;
    plan.sched = plan_for(Scenario::Sched, 7, &baseline).sched;
    let mut oracle: Option<(Option<i64>, Vec<u8>, u64)> = None;
    for (name, cfg) in engines() {
        let run = run_probe_on("zpoline", Some(&plan), cfg);
        match &oracle {
            None => oracle = Some((run.exit, run.output, run.clock)),
            Some((ref_exit, ref_out, ref_clock)) => {
                assert_eq!(run.exit, *ref_exit, "{name}: exit diverges");
                assert_eq!(&run.output, ref_out, "{name}: output diverges");
                assert_eq!(run.clock, *ref_clock, "{name}: clock diverges");
            }
        }
    }
}

/// Same matrix with the sampling profiler enabled: sample boundaries cap
/// block budgets mid-trace, and the streams still match the oracle.
#[test]
fn engine_matrix_streams_identical_with_profiler() {
    let mut oracle: Option<(Vec<TraceEntry>, u64, Option<i64>)> = None;
    for (name, cfg) in engines() {
        let (stream, clock, status, _) = run_micro(cfg.profile(64), 5_000, true);
        match &oracle {
            None => oracle = Some((stream, clock, status)),
            Some((ref_stream, ref_clock, ref_status)) => {
                assert_streams_equal(name, &stream, ref_stream);
                assert_eq!(clock, *ref_clock, "{name}: clock diverges");
                assert_eq!(status, *ref_status, "{name}: status diverges");
            }
        }
    }
}

/// Throughput is monotonically non-decreasing across the ablation:
/// stepwise ≤ block ≤ trace in simulated instructions per host second
/// (best-of-3 to damp scheduler noise; the observed gaps are multiples,
/// so the ordering is robust).
#[test]
fn engine_matrix_throughput_ordering_monotonic() {
    let iters = 20_000;
    let mut rates = Vec::new();
    for (name, cfg) in engines() {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (_, _, status, dt) = run_micro(cfg.clone(), iters, false);
            assert_eq!(status, Some(0), "{name}: bad exit");
            best = best.min(dt);
        }
        rates.push((name, 1.0 / best));
    }
    for pair in rates.windows(2) {
        let ((slow, a), (fast, b)) = (pair[0], pair[1]);
        assert!(
            b >= a,
            "inst/s ordering violated: {fast} ({b:.1}/s rel) < {slow} ({a:.1}/s rel)"
        );
    }
}
