//! Determinism regression: the block-based fast engine must be
//! instruction-for-instruction identical to the retained per-step oracle
//! ([`Kernel::set_stepwise`]) — same rips, same cycle stamps, same events,
//! same scheduler interleaving — even for a multi-core self-modifying-code
//! guest that exercises every P5 icache hazard the simulator models.

use std::collections::BTreeMap;
use std::rc::Rc;

use sim_isa::{Asm, Reg};
use sim_kernel::{nr, ExecLoader, ExecOpts, Kernel, LoadedImage, RunExit, TraceEntry, Vfs};
use sim_loader::boot_kernel;
use sim_mem::AddressSpace;

/// Loader stub mapping raw code **RWX** so the guest can patch itself.
struct RwxLoader(Vec<u8>);

impl ExecLoader for RwxLoader {
    fn load(
        &self,
        _vfs: &mut Vfs,
        _path: &str,
        _argv: &[String],
        _env: &[String],
        _opts: &ExecOpts,
    ) -> Result<LoadedImage, i64> {
        let mut space = AddressSpace::new();
        space
            .map(0x1000, 0x10000, sim_mem::Perms::RWX, "/bin/smc")
            .map_err(|_| -nr::ENOMEM)?;
        space.write_raw(0x1000, &self.0).map_err(|_| -nr::ENOMEM)?;
        space
            .map(0x8_0000, 0x10000, sim_mem::Perms::RW, "[stack]")
            .map_err(|_| -nr::ENOMEM)?;
        Ok(LoadedImage {
            space,
            entry: 0x1000,
            rsp: 0x9_0000 - 64,
            hostcall_sites: Vec::new(),
            symbols: BTreeMap::new(),
            lib_bases: BTreeMap::new(),
            vdso_base: 0,
        })
    }
}

/// Two-thread self-modifying guest.
///
/// Thread A calls `target` (which returns a constant) 300 times,
/// accumulating the returned values, and enters the kernel once per
/// iteration — the serialization point at which another core's code patch
/// becomes architecturally visible. Thread B spins, rewrites the constant's
/// immediate byte underfoot (store → own-core exact-overlap invalidation,
/// cross-core staleness until A serializes), spins again, and rewrites it
/// once more. The final accumulator value — and therefore the exit status —
/// depends on exactly which iterations observe which patch, so any engine
/// divergence in interleaving or invalidation shows up in the exit code as
/// well as the trace.
///
/// Returns `(code, imm_addr)` where `imm_addr` is the guest address of the
/// patchable immediate byte (MovImm encodes as `48 b8 imm64`, so +2).
fn smc_guest() -> (Vec<u8>, u64) {
    let mut a = Asm::new();
    // Spawn thread B: fresh stack at 0x8_8000 with its entry seeded on it.
    a.mov_imm(Reg::Rsi, 0x8_8000);
    a.lea_label(Reg::Rcx, "thread_b");
    a.store(Reg::Rsi, 0, Reg::Rcx);
    a.mov_imm(Reg::Rax, nr::SYS_CLONE);
    a.syscall();
    a.test_reg(Reg::Rax, Reg::Rax);
    a.jz("thread_b");
    // Thread A: accumulate 300 calls through the patchable target.
    a.mov_imm(Reg::R14, 0);
    a.mov_imm(Reg::R13, 300);
    a.label("iter");
    a.call("target");
    a.add_reg(Reg::R14, Reg::Rax);
    a.mov_imm(Reg::Rax, nr::SYS_GETPID);
    a.syscall();
    a.sub_imm(Reg::R13, 1);
    a.jnz("iter");
    a.mov_reg(Reg::Rdi, Reg::R14);
    a.and_imm(Reg::Rdi, 0x7f);
    a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
    a.syscall();
    // The patch target: returns a constant thread B rewrites underfoot.
    a.label("target");
    a.mov_imm(Reg::Rax, 1);
    a.ret();
    // Thread B: spin, patch the immediate to 2, spin, patch to 3, park.
    a.label("thread_b");
    a.mov_imm(Reg::Rcx, 2_000);
    a.label("spin1");
    a.sub_imm(Reg::Rcx, 1);
    a.jnz("spin1");
    a.lea_label(Reg::R11, "target");
    a.mov_imm(Reg::Rdx, 2);
    a.store_byte(Reg::R11, 2, Reg::Rdx);
    a.mov_imm(Reg::Rcx, 4_000);
    a.label("spin2");
    a.sub_imm(Reg::Rcx, 1);
    a.jnz("spin2");
    a.mov_imm(Reg::Rdx, 3);
    a.store_byte(Reg::R11, 2, Reg::Rdx);
    a.label("park");
    a.jmp("park");
    let prog = a.finish_program();
    let imm_addr = 0x1000 + prog.sym("target") + 2;
    (prog.bytes, imm_addr)
}

/// Run the SMC guest under one engine, returning the full execution trace,
/// final clock, and exit status.
fn run_smc(stepwise: bool) -> (Vec<TraceEntry>, u64, Option<i64>) {
    let (code, imm_addr) = smc_guest();
    let mut k = Kernel::new();
    k.set_stepwise(stepwise);
    k.set_loader(Rc::new(RwxLoader(code)));
    let pid = k.spawn("/bin/smc", &[], &[], None).expect("spawn");
    // A deferred (torn) write to the same immediate exercises the
    // flush-due-writes path of both engines too.
    k.defer_write_u8(pid, imm_addr, 7, 40_000);
    k.start_exec_trace();
    let exit = k.run(1_000_000_000);
    assert_eq!(exit, RunExit::AllExited);
    let status = k.process(pid).expect("proc").exit_status;
    (k.take_exec_trace(), k.clock, status)
}

/// The fast engine's instruction-level trace (rip, cycle stamp, event,
/// thread) is bit-identical to the per-step oracle's on the SMC guest.
#[test]
fn block_engine_trace_matches_stepwise_oracle() {
    let (fast_trace, fast_clock, fast_status) = run_smc(false);
    let (ref_trace, ref_clock, ref_status) = run_smc(true);
    // The guest must actually have run a nontrivial interleaving.
    assert!(ref_trace.len() > 5_000, "trace too short: {}", ref_trace.len());
    assert_eq!(fast_trace.len(), ref_trace.len());
    for (i, (f, r)) in fast_trace.iter().zip(ref_trace.iter()).enumerate() {
        assert_eq!(f, r, "trace diverges at step {i}: fast={f:?} ref={r:?}");
    }
    assert_eq!(fast_clock, ref_clock);
    assert_eq!(fast_status, ref_status);
    // The hazard must actually manifest: if no patch were ever observed the
    // accumulator would be 300 × 1 and the status 300 & 0x7f = 44.
    assert_ne!(fast_status, Some(44), "guest never observed a code patch");
}

/// A real application through the full loader stack behaves identically
/// under both engines: same output, same exit, same final clock.
#[test]
fn engines_agree_on_real_application() {
    let run = |stepwise: bool| {
        let mut k = boot_kernel();
        k.set_stepwise(stepwise);
        apps::install_world(&mut k.vfs);
        let pid = k
            .spawn("/usr/bin/ls-sim", &["/usr/bin/ls-sim".to_string()], &[], None)
            .expect("spawn");
        k.run(1_000_000_000_000);
        let p = k.process(pid).expect("proc");
        (p.output_string(), p.exit_status, k.clock, p.stats.syscalls)
    };
    assert_eq!(run(false), run(true));
}
