//! Determinism regression: the block-based fast engine and the trace
//! engine (superblock promotion) must be instruction-for-instruction
//! identical to the retained per-step oracle (`EngineConfig::stepwise()`)
//! — same rips, same cycle stamps, same events, same scheduler
//! interleaving — even for a multi-core self-modifying-code guest that
//! exercises every P5 icache hazard the simulator models (and, for the
//! trace engine, every trace-unlink path: SMC stores on trace pages,
//! serialization points mid-replay, torn cross-core writes).

use std::rc::Rc;

use k23_tests::{smc_guest, RwxLoader};
use sim_kernel::{EngineConfig, Kernel, RunExit, TraceEntry};
use sim_loader::boot_kernel;

fn engine_cfg(stepwise: bool) -> EngineConfig {
    if stepwise {
        EngineConfig::stepwise()
    } else {
        EngineConfig::new()
    }
}

/// Run the SMC guest under one engine, returning the full execution trace,
/// final clock, and exit status.
fn run_smc_on(cfg: EngineConfig) -> (Vec<TraceEntry>, u64, Option<i64>) {
    let (code, imm_addr) = smc_guest();
    let mut k = Kernel::new();
    k.configure(cfg);
    k.set_loader(Rc::new(RwxLoader(code)));
    let pid = k.spawn("/bin/smc", &[], &[], None).expect("spawn");
    // A deferred (torn) write to the same immediate exercises the
    // flush-due-writes path of both engines too.
    k.defer_write_u8(pid, imm_addr, 7, 40_000);
    k.start_exec_trace();
    let exit = k.run(1_000_000_000);
    assert_eq!(exit, RunExit::AllExited);
    let status = k.process(pid).expect("proc").exit_status;
    (k.take_exec_trace(), k.clock, status)
}

/// Compares one engine's SMC run against the stepwise oracle's.
fn assert_smc_matches_oracle(cfg: EngineConfig) {
    let (fast_trace, fast_clock, fast_status) = run_smc_on(cfg);
    let (ref_trace, ref_clock, ref_status) = run_smc_on(engine_cfg(true));
    // The guest must actually have run a nontrivial interleaving.
    assert!(ref_trace.len() > 5_000, "trace too short: {}", ref_trace.len());
    assert_eq!(fast_trace.len(), ref_trace.len());
    for (i, (f, r)) in fast_trace.iter().zip(ref_trace.iter()).enumerate() {
        assert_eq!(f, r, "trace diverges at step {i}: fast={f:?} ref={r:?}");
    }
    assert_eq!(fast_clock, ref_clock);
    assert_eq!(fast_status, ref_status);
    // The hazard must actually manifest: if no patch were ever observed the
    // accumulator would be 300 × 1 and the status 300 & 0x7f = 44.
    assert_ne!(fast_status, Some(44), "guest never observed a code patch");
}

/// The fast engine's instruction-level trace (rip, cycle stamp, event,
/// thread) is bit-identical to the per-step oracle's on the SMC guest.
#[test]
fn block_engine_trace_matches_stepwise_oracle() {
    assert_smc_matches_oracle(engine_cfg(false));
}

/// Same for the trace engine: superblocks formed over self-modifying code
/// are unlinked and side-exited such that the instruction stream stays
/// bit-identical to the oracle's.
#[test]
fn trace_engine_trace_matches_stepwise_oracle() {
    assert_smc_matches_oracle(EngineConfig::traced());
}

/// A real application through the full loader stack behaves identically
/// under all three engines: same output, same exit, same final clock.
#[test]
fn engines_agree_on_real_application() {
    let run = |cfg: EngineConfig| {
        let mut k = boot_kernel();
        k.configure(cfg);
        apps::install_world(&mut k.vfs);
        let pid = k
            .spawn("/usr/bin/ls-sim", &["/usr/bin/ls-sim".to_string()], &[], None)
            .expect("spawn");
        k.run(1_000_000_000_000);
        let p = k.process(pid).expect("proc");
        (p.output_string(), p.exit_status, k.clock, p.stats.syscalls)
    };
    let oracle = run(engine_cfg(true));
    assert_eq!(run(engine_cfg(false)), oracle, "block engine diverges");
    assert_eq!(run(EngineConfig::traced()), oracle, "trace engine diverges");
}
