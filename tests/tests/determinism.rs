//! Determinism regression: the block-based fast engine must be
//! instruction-for-instruction identical to the retained per-step oracle
//! (`EngineConfig::stepwise()`) — same rips, same cycle stamps, same events,
//! same scheduler interleaving — even for a multi-core self-modifying-code
//! guest that exercises every P5 icache hazard the simulator models.

use std::rc::Rc;

use k23_tests::{smc_guest, RwxLoader};
use sim_kernel::{EngineConfig, Kernel, RunExit, TraceEntry};
use sim_loader::boot_kernel;

fn engine_cfg(stepwise: bool) -> EngineConfig {
    if stepwise {
        EngineConfig::stepwise()
    } else {
        EngineConfig::new()
    }
}

/// Run the SMC guest under one engine, returning the full execution trace,
/// final clock, and exit status.
fn run_smc(stepwise: bool) -> (Vec<TraceEntry>, u64, Option<i64>) {
    let (code, imm_addr) = smc_guest();
    let mut k = Kernel::new();
    k.configure(engine_cfg(stepwise));
    k.set_loader(Rc::new(RwxLoader(code)));
    let pid = k.spawn("/bin/smc", &[], &[], None).expect("spawn");
    // A deferred (torn) write to the same immediate exercises the
    // flush-due-writes path of both engines too.
    k.defer_write_u8(pid, imm_addr, 7, 40_000);
    k.start_exec_trace();
    let exit = k.run(1_000_000_000);
    assert_eq!(exit, RunExit::AllExited);
    let status = k.process(pid).expect("proc").exit_status;
    (k.take_exec_trace(), k.clock, status)
}

/// The fast engine's instruction-level trace (rip, cycle stamp, event,
/// thread) is bit-identical to the per-step oracle's on the SMC guest.
#[test]
fn block_engine_trace_matches_stepwise_oracle() {
    let (fast_trace, fast_clock, fast_status) = run_smc(false);
    let (ref_trace, ref_clock, ref_status) = run_smc(true);
    // The guest must actually have run a nontrivial interleaving.
    assert!(ref_trace.len() > 5_000, "trace too short: {}", ref_trace.len());
    assert_eq!(fast_trace.len(), ref_trace.len());
    for (i, (f, r)) in fast_trace.iter().zip(ref_trace.iter()).enumerate() {
        assert_eq!(f, r, "trace diverges at step {i}: fast={f:?} ref={r:?}");
    }
    assert_eq!(fast_clock, ref_clock);
    assert_eq!(fast_status, ref_status);
    // The hazard must actually manifest: if no patch were ever observed the
    // accumulator would be 300 × 1 and the status 300 & 0x7f = 44.
    assert_ne!(fast_status, Some(44), "guest never observed a code patch");
}

/// A real application through the full loader stack behaves identically
/// under both engines: same output, same exit, same final clock.
#[test]
fn engines_agree_on_real_application() {
    let run = |stepwise: bool| {
        let mut k = boot_kernel();
        k.configure(engine_cfg(stepwise));
        apps::install_world(&mut k.vfs);
        let pid = k
            .spawn("/usr/bin/ls-sim", &["/usr/bin/ls-sim".to_string()], &[], None)
            .expect("spawn");
        k.run(1_000_000_000_000);
        let p = k.process(pid).expect("proc");
        (p.output_string(), p.exit_status, k.clock, p.stats.syscalls)
    };
    assert_eq!(run(false), run(true));
}
