//! Record/replay (DESIGN.md §11).
//!
//! 1. The full engine matrix: a run recorded on any engine replays with
//!    byte-identical logs and sim-obs event streams on any other engine
//!    (9 record×replay pairs, with and without a fault plan).
//! 2. Divergence bisection: an artificially perturbed log is pinned to
//!    the exact record index and retired-instruction coordinate, both by
//!    the live verifier and by the offline prefix-digest bisection.
//! 3. Time-travel navigation: seeking to a retired-instruction target
//!    from a restored checkpoint reproduces the architectural state of a
//!    replay from the start.

use std::rc::Rc;

use bench::micro::{build_micro_app, MICRO_APP, MICRO_CFG};
use interpose::{Interposer, Native};
use sim_fault::{FaultKind, FaultPlan, SyscallFault};
use sim_kernel::{nr, EngineConfig, Kernel, RunExit};
use sim_loader::boot_kernel;
use sim_record::{first_divergence, obs_lines, Rec};

/// The three engine configurations, oracle first.
fn engines() -> [(&'static str, EngineConfig); 3] {
    [
        ("stepwise", EngineConfig::stepwise()),
        ("block", EngineConfig::new()),
        ("trace", EngineConfig::traced()),
    ]
}

/// The errno-injection plan used by the fault-plan matrix leg.
fn plan() -> FaultPlan {
    let mut plan = FaultPlan::zero(11);
    plan.syscall_faults = vec![
        SyscallFault {
            nr: nr::SYS_NONEXISTENT,
            occurrence: 7,
            kind: FaultKind::Eintr,
        },
        SyscallFault {
            nr: nr::SYS_NONEXISTENT,
            occurrence: 900,
            kind: FaultKind::Eagain,
        },
    ];
    plan
}

/// Boots the syscall-500 stress guest, ready to configure and run.
fn boot_micro(iters: u64) -> Kernel {
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    k.vfs
        .write_file(MICRO_CFG, &iters.to_le_bytes())
        .expect("cfg");
    let ip = Native;
    ip.install(&mut k);
    ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    k
}

/// Records the micro workload under `cfg` with obs enabled; returns the
/// captured log, the canonicalized obs stream, and the final clock.
fn record_micro(cfg: EngineConfig, iters: u64) -> (Vec<Rec>, Vec<String>, u64) {
    sim_obs::enable(sim_obs::ObsConfig::default());
    let mut k = boot_micro(iters);
    k.configure(cfg.record());
    let exit = k.run(u64::MAX / 4);
    assert_eq!(exit, RunExit::AllExited);
    let log = k.take_recording();
    let rec = sim_obs::disable().expect("recorder");
    (log, obs_lines(&rec), k.clock)
}

/// Verify-replays `log` under `cfg`; returns the divergence (if any),
/// the number of log records consumed, the obs stream, and the clock.
fn verify_micro(
    cfg: EngineConfig,
    iters: u64,
    log: Rc<Vec<Rec>>,
) -> (Option<sim_record::Divergence>, usize, Vec<String>, u64) {
    sim_obs::enable(sim_obs::ObsConfig::default());
    let mut k = boot_micro(iters);
    k.configure(cfg.replay_verify(log));
    let exit = k.run(u64::MAX / 4);
    let div = k.record_divergence().cloned();
    let cursor = k.record_cursor();
    let rec = sim_obs::disable().expect("recorder");
    if div.is_none() {
        assert_eq!(exit, RunExit::AllExited);
    } else {
        assert_eq!(exit, RunExit::Stop);
    }
    (div, cursor, obs_lines(&rec), k.clock)
}

/// Runs the 3×3 record×replay matrix for one optional fault plan.
fn run_matrix(fault: Option<FaultPlan>) {
    let iters = 2_000;
    let with = |cfg: EngineConfig| match &fault {
        Some(p) => cfg.fault(p.clone()),
        None => cfg,
    };
    let mut recordings = Vec::new();
    for (name, cfg) in engines() {
        let (log, obs, clock) = record_micro(with(cfg), iters);
        assert!(
            log.len() > 100,
            "{name}: log too short ({} recs)",
            log.len()
        );
        if fault.is_some() {
            assert!(
                log.iter().any(|r| !matches!(r, Rec::Syscall { .. })),
                "{name}: fault plan left no asynchrony records"
            );
        }
        recordings.push((name, Rc::new(log), obs, clock));
    }
    // Engine-invariance of the log itself: every engine captured the
    // byte-identical record stream.
    for (name, log, obs, clock) in &recordings[1..] {
        assert_eq!(
            **log, *recordings[0].1,
            "{name}: log differs from stepwise"
        );
        assert_eq!(*obs, recordings[0].2, "{name}: obs differs from stepwise");
        assert_eq!(*clock, recordings[0].3, "{name}: clock differs");
    }
    // All 9 record-on-A / replay-on-B pairs: no divergence, the full log
    // consumed, and a byte-identical obs event stream.
    for (rec_name, log, obs, clock) in &recordings {
        for (rep_name, cfg) in engines() {
            let (div, cursor, rep_obs, rep_clock) =
                verify_micro(with(cfg), iters, Rc::clone(log));
            assert!(
                div.is_none(),
                "record {rec_name} → replay {rep_name}: diverged: {div:?}"
            );
            assert_eq!(
                cursor,
                log.len(),
                "record {rec_name} → replay {rep_name}: log not fully consumed"
            );
            assert_eq!(
                rep_obs, *obs,
                "record {rec_name} → replay {rep_name}: obs stream differs"
            );
            assert_eq!(
                rep_clock, *clock,
                "record {rec_name} → replay {rep_name}: clock differs"
            );
        }
    }
}

#[test]
fn record_replay_matrix_plain() {
    run_matrix(None);
}

#[test]
fn record_replay_matrix_under_fault_plan() {
    run_matrix(Some(plan()));
}

/// A perturbed log is pinned to the exact divergence coordinate: the
/// live verifier halts at the perturbed index with the record's retired
/// count, and the offline prefix-digest bisection lands on the same
/// index in O(log n) probes.
#[test]
fn perturbed_log_bisects_to_exact_index() {
    let iters = 2_000;
    let (log, _, _) = record_micro(EngineConfig::traced(), iters);
    // Perturb a mid-log syscall record's return value.
    let idx = log
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Rec::Syscall { .. }))
        .map(|(i, _)| i)
        .nth(log.len() / 2)
        .unwrap_or(log.len() / 2);
    let mut bad = log.clone();
    let expect_retired = bad[idx].retired();
    if let Rec::Syscall { ret, .. } = &mut bad[idx] {
        *ret = ret.wrapping_add(1);
    } else {
        panic!("picked a non-syscall record");
    }
    // Offline bisection between the pristine and perturbed logs.
    let div = first_divergence(&log, &bad).expect("bisection found nothing");
    assert_eq!(div.index, idx, "bisection index");
    assert_eq!(div.retired, expect_retired, "bisection retired coordinate");
    assert!(div.probes <= 16, "bisection probes: {}", div.probes);
    // Live verification against the perturbed log halts at the same
    // record with the same retired-instruction coordinate.
    let (div, cursor, _, _) = verify_micro(EngineConfig::stepwise(), iters, Rc::new(bad));
    let div = div.expect("verifier missed the perturbation");
    assert_eq!(div.index, idx, "verifier index");
    assert_eq!(div.retired, expect_retired, "verifier retired coordinate");
    assert_eq!(cursor, idx, "verifier cursor");
}

/// Architectural register state of `(pid, tid)` for comparison.
fn cpu_state(k: &mut Kernel) -> (u64, Vec<u64>, u64) {
    let pid = k.pids()[0];
    let tid = k
        .process(pid)
        .expect("proc")
        .threads
        .first()
        .expect("thread")
        .tid;
    let cpu = k.cpu_mut(pid, tid).expect("cpu");
    (cpu.rip, cpu.regs.to_vec(), k.clock)
}

/// Time travel: a navigation-grade recording's checkpoint chain seeds a
/// seek that reproduces the register file, RIP, clock, and retired count
/// of an inject replay from the start.
#[test]
fn navigation_seek_matches_replay_from_start() {
    let iters = 2_000;
    // Navigation-grade record (block engine): checkpoints + page writes.
    let (log, ckpts, total) = {
        let mut k = boot_micro(iters);
        k.configure(EngineConfig::new().record_with_checkpoints(2_000));
        let exit = k.run(u64::MAX / 4);
        assert_eq!(exit, RunExit::AllExited);
        assert!(k.record_chain_ok(), "single-process run must keep the chain");
        (
            Rc::new(k.take_recording()),
            k.take_checkpoints(),
            k.record_retired(),
        )
    };
    assert!(
        ckpts.len() >= 2,
        "expected ≥ 2 checkpoints over {total} retired instructions"
    );
    // Seek past the second checkpoint, not on a checkpoint boundary.
    let target = ckpts[1].retired + 123;
    assert!(target < total);
    // Reference: inject replay from the start (stepwise engine).
    let reference = {
        let mut k = boot_micro(iters);
        k.configure(EngineConfig::stepwise().replay_inject(Rc::clone(&log)));
        let exit = k.run_to_retired(target, u64::MAX / 4);
        assert_eq!(exit, RunExit::Stop);
        assert_eq!(k.record_retired(), target);
        cpu_state(&mut k)
    };
    // Seek: restore the nearest checkpoint at or below the target, then
    // inject-replay the remainder (block engine — cross-engine on top).
    let sought = {
        let mut k = boot_micro(iters);
        k.configure(EngineConfig::new().replay_inject(Rc::clone(&log)));
        let at = ckpts
            .iter()
            .rposition(|c| c.retired <= target)
            .expect("no checkpoint below target");
        k.restore_to_checkpoint(&ckpts, at).expect("restore");
        assert_eq!(k.record_retired(), ckpts[at].retired);
        let exit = k.run_to_retired(target, u64::MAX / 4);
        assert_eq!(exit, RunExit::Stop);
        assert_eq!(k.record_retired(), target);
        cpu_state(&mut k)
    };
    assert_eq!(sought.0, reference.0, "rip differs after seek");
    assert_eq!(sought.1, reference.1, "registers differ after seek");
    assert_eq!(sought.2, reference.2, "clock differs after seek");
}
