//! Small-scale shape assertions mirroring the headline results of the
//! paper's evaluation (the full regenerations live in `cargo run -p bench`).

use interpose::Native;

/// Table 5 shape: the overhead ordering of the microbenchmark.
#[test]
fn micro_overheads_are_ordered_like_table5() {
    let n = 4_000;
    let native = bench::micro::per_iteration_cycles(bench::Config::Native, n);
    let zp = bench::micro::per_iteration_cycles(bench::Config::ZpolineDefault, n) / native;
    let zpu = bench::micro::per_iteration_cycles(bench::Config::ZpolineUltra, n) / native;
    let lp = bench::micro::per_iteration_cycles(bench::Config::Lazypoline, n) / native;
    let k23 = bench::micro::per_iteration_cycles(bench::Config::K23Default, n) / native;
    let k23u = bench::micro::per_iteration_cycles(bench::Config::K23Ultra, n) / native;
    let sudni = bench::micro::per_iteration_cycles(bench::Config::SudNoInterpose, n) / native;
    let sud = bench::micro::per_iteration_cycles(bench::Config::Sud, n) / native;

    // zpoline fastest; K23-default between SUD-no-interposition and
    // lazypoline; K23-ultra slightly above lazypoline; SUD an order of
    // magnitude out — exactly the Table 5 ordering.
    assert!(zp < zpu, "zpoline default < ultra");
    assert!(zpu < k23, "zpoline-ultra < K23-default ({zpu:.3} vs {k23:.3})");
    assert!(sudni < k23, "slow path alone < K23-default");
    assert!(k23 < lp, "K23-default beats lazypoline ({k23:.3} vs {lp:.3})");
    assert!(lp < k23u * 1.1, "lazypoline ~ K23-ultra");
    assert!(sud > 10.0, "SUD is an order of magnitude slower ({sud:.1})");
    // And absolute closeness to the paper (±0.05 on the small ratios).
    for (got, paper) in [
        (zp, 1.1267),
        (zpu, 1.1576),
        (lp, 1.3801),
        (k23, 1.2788),
        (k23u, 1.3919),
        (sudni, 1.2269),
    ] {
        assert!((got - paper).abs() < 0.08, "got {got:.4}, paper {paper:.4}");
    }
}

/// Table 6 shape on one row: rewriting-based interposers stay near native;
/// SUD collapses.
#[test]
fn macro_relative_throughput_shape() {
    let specs = apps::table6_specs(60);
    let spec = &specs[0]; // nginx 1 worker 0KB
    let thr = |c: bench::Config| {
        let log = if c.needs_offline() {
            Some(bench::macros_::collect_offline_log(spec))
        } else {
            None
        };
        bench::macros_::macro_throughput(spec, c, &log)
    };
    let native = {
        let mut k = sim_loader::boot_kernel();
        apps::install_world(&mut k.vfs);
        apps::run_macro(&mut k, &Native, spec, 40_000_000_000_000)
            .unwrap()
            .throughput()
    };
    let zp = thr(bench::Config::ZpolineDefault) / native;
    let k23 = thr(bench::Config::K23Default) / native;
    let sud = thr(bench::Config::Sud) / native;
    assert!(zp > 0.97, "zpoline near native: {zp:.3}");
    assert!(k23 > 0.95, "K23 near native: {k23:.3}");
    assert!(sud < 0.70, "SUD collapses: {sud:.3}");
    assert!(zp > k23, "zpoline above K23 on the fast path");
}

/// Table 2 shape: coreutils site counts match the paper exactly; servers
/// land within a small tolerance.
#[test]
fn offline_site_counts_match_table2() {
    for (app, expected) in apps::EXPECTED_SITES {
        let got = bench::table2::sites_for_simple(app);
        assert_eq!(got, expected, "{app}");
    }
}
