//! simprof integration: the sampling profiler is deterministic (folded
//! stacks and the stage table are byte-identical across consecutive runs
//! and across the block/stepwise engines, DESIGN.md §9) and invisible
//! (enabling it never changes the guest's clock stream).
//!
//! Like `observability.rs`, these tests mutate the thread-local `sim-obs`
//! state, which is safe under the multi-threaded harness because each
//! test drives its own simulated machine on its own host thread.

use apps::MacroSpec;
use interpose::Interposer;
use k23::OfflineSession;
use sim_kernel::{EngineConfig, RunExit};
use sim_loader::boot_kernel;
use sim_obs::ObsConfig;

const APP: &str = "/usr/bin/ls-sim";
const BUDGET: u64 = u64::MAX / 4;
const PERIOD: u64 = 64;

fn make(name: &str) -> (Box<dyn Interposer>, bool) {
    pitfalls::register_all();
    let ip = interpose::by_name_spec(name).expect("known interposer");
    (ip, name.starts_with("k23"))
}

fn engine_cfg(stepwise: bool, profile: bool) -> EngineConfig {
    let cfg = if stepwise {
        EngineConfig::stepwise()
    } else {
        EngineConfig::new()
    };
    if profile {
        cfg.profile(PERIOD)
    } else {
        cfg
    }
}

/// `(folded stacks, stage table, sample count)` when observed.
type Profile = Option<(String, String, u64)>;

/// Runs the coreutil under one mechanism/engine; returns the profile (if
/// observing) and the online-phase clock.
fn run_coreutil(name: &str, stepwise: bool, profile: bool, observe: bool) -> (Profile, u64) {
    let (ip, needs_offline) = make(name);
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let argv = vec![APP.to_string()];
    if needs_offline {
        let session = OfflineSession::new(&mut k, APP);
        let (_pid, exit) = session
            .run_once(&mut k, &argv, &[], BUDGET)
            .expect("offline phase");
        assert_eq!(exit, RunExit::AllExited);
        session.finish(&mut k);
    }
    sim_obs::clear_region_paths();
    sim_obs::clear_span_ranges();
    k.configure(engine_cfg(stepwise, profile));
    if observe {
        sim_obs::enable(ObsConfig {
            micro_events: false,
            ..ObsConfig::default()
        });
    }
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, APP, &argv, &[]).expect("spawn");
    let t0 = k.clock;
    let exit = k.run(BUDGET);
    let rec = sim_obs::disable();
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    let out = rec.map(|r| (r.folded_stacks(), r.stage_table(), r.samples.len() as u64));
    (out, k.clock - t0)
}

/// Runs the smallest Table 6 server spec under one mechanism/engine,
/// profiled and observed. K23's offline log is transplanted, as the
/// bench harness does (logs are collected once per application, §5.1).
fn run_server(
    name: &str,
    stepwise: bool,
    spec: &MacroSpec,
    offline_log: &Option<(String, Vec<u8>)>,
) -> (String, String, u64) {
    let (ip, needs_offline) = make(name);
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    if needs_offline {
        let (path, bytes) = offline_log.as_ref().expect("offline log collected");
        k.vfs.mkdir_p(k23::LOG_DIR).expect("log dir");
        k.vfs.write_file(path, bytes).expect("log install");
        k.vfs.set_immutable(k23::LOG_DIR, true).expect("seal");
    }
    sim_obs::clear_region_paths();
    sim_obs::clear_span_ranges();
    k.configure(engine_cfg(stepwise, true));
    sim_obs::enable(ObsConfig {
        micro_events: false,
        ..ObsConfig::default()
    });
    let res = apps::run_macro(&mut k, ip.as_ref(), spec, BUDGET);
    let rec = sim_obs::disable().expect("recorder");
    res.unwrap_or_else(|e| panic!("{} under {name}: {e:?}", spec.name));
    (
        rec.folded_stacks(),
        rec.stage_table(),
        rec.samples.len() as u64,
    )
}

/// Satellite (d), coreutil half: double-run and cross-engine byte
/// equality of the folded stacks and stage table under K23 and ptrace.
#[test]
fn coreutil_profiles_identical_across_runs_and_engines() {
    for name in ["k23", "ptrace"] {
        let (a, _) = run_coreutil(name, false, true, true);
        let (b, _) = run_coreutil(name, false, true, true);
        let (c, _) = run_coreutil(name, true, true, true);
        let (a, b, c) = (a.expect("profile"), b.expect("profile"), c.expect("profile"));
        assert!(a.2 > 0, "{name}: no samples captured");
        assert_eq!(a, b, "{name}: consecutive block-engine runs differ");
        assert_eq!(a, c, "{name}: block and stepwise profiles differ");
    }
}

/// Satellite (d), server half: same byte-identity contract on a
/// client/server macro workload.
#[test]
fn server_profiles_identical_across_runs_and_engines() {
    let spec = apps::table6_specs(200).remove(0);
    for name in ["k23", "ptrace"] {
        let offline = if name.starts_with("k23") {
            Some(bench::macros_::collect_offline_log(&spec))
        } else {
            None
        };
        let a = run_server(name, false, &spec, &offline);
        let b = run_server(name, false, &spec, &offline);
        let c = run_server(name, true, &spec, &offline);
        assert!(a.2 > 0, "{name}: no samples captured");
        assert_eq!(a, b, "{name}: consecutive block-engine runs differ");
        assert_eq!(a, c, "{name}: block and stepwise profiles differ");
    }
}

/// Sampling is architectural and read-only: configuring the profiler —
/// with or without an active recorder — leaves the guest's clock stream
/// untouched, under both engines. (The block engine's budgets are capped
/// at sample boundaries, so this also pins that block splitting never
/// changes charged cycles.)
#[test]
fn sampling_is_invisible_to_the_guest() {
    for stepwise in [false, true] {
        let (_, plain) = run_coreutil("zpoline", stepwise, false, false);
        let (_, prof_only) = run_coreutil("zpoline", stepwise, true, false);
        let (out, prof_obs) = run_coreutil("zpoline", stepwise, true, true);
        assert_eq!(plain, prof_only, "profiler session alone changed the clock");
        assert_eq!(plain, prof_obs, "sampling + recording changed the clock");
        assert!(out.expect("profile").2 > 0, "samples captured");
    }
}
