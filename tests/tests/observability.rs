//! `sim-obs` integration: trace determinism across engines and runs,
//! tracing invisibility (observing the machine never perturbs it), and
//! per-interposer overhead attribution (paper Tables 3/4).
//!
//! These tests mutate the thread-local `sim-obs` recorder, which is safe
//! under the multi-threaded test harness precisely because the recorder
//! is thread-local — each test drives its own simulated machine.

use std::rc::Rc;

use bench::micro::{
    build_micro_app, per_iteration_cycles, per_iteration_cycles_with, MICRO_APP, MICRO_CFG,
};
use bench::Config;
use interpose::{Interposer, PtraceInterposer, SudInterposer};
use k23::{OfflineSession, Variant, K23};
use k23_tests::{smc_guest, smc_guest_param, RwxLoader};
use proptest::prelude::*;
use sim_kernel::{EngineConfig, Kernel, RunExit};
use sim_loader::boot_kernel;
use sim_obs::ObsConfig;

/// Runs the SMC guest under one engine with tracing as configured;
/// returns the recorder plus the guest-visible outcome. With `audit` a
/// kernel-side audit session is configured against a claim nothing in
/// the guest satisfies (worst-case classification work on every
/// syscall).
fn run_smc_traced(
    stepwise: bool,
    cfg: Option<ObsConfig>,
    guest: (Vec<u8>, u64),
    audit: bool,
) -> (Option<Box<sim_obs::Recorder>>, u64, Option<i64>, u64) {
    let (code, imm_addr) = guest;
    if let Some(cfg) = cfg {
        sim_obs::enable(cfg);
    }
    let mut k = Kernel::new();
    let mut engine = if stepwise {
        EngineConfig::stepwise()
    } else {
        EngineConfig::new()
    };
    if audit {
        engine = engine.audit(sim_kernel::AuditSpec {
            mechanism: "probe".to_string(),
            handler_regions: vec!["libprobe.so".to_string()],
            ..sim_kernel::AuditSpec::default()
        });
    }
    k.configure(engine);
    k.set_loader(Rc::new(RwxLoader(code)));
    let pid = k.spawn("/bin/smc", &[], &[], None).expect("spawn");
    k.defer_write_u8(pid, imm_addr, 7, 40_000);
    let exit = k.run(1_000_000_000);
    let rec = sim_obs::disable();
    assert_eq!(exit, RunExit::AllExited);
    let p = k.process(pid).expect("proc");
    (rec, k.clock, p.exit_status, p.stats.syscalls)
}

/// Architectural event streams (syscalls, signals, context switches) are
/// byte-identical between the block engine and the stepwise oracle — the
/// ISSUE's "event streams, not just instruction traces" requirement.
#[test]
fn event_streams_identical_across_engines() {
    let cfg = ObsConfig::default(); // arch events only
    let (fast, fc, fs, fn_) = run_smc_traced(false, Some(cfg.clone()), smc_guest(), false);
    let (slow, sc, ss, sn) = run_smc_traced(true, Some(cfg), smc_guest(), false);
    let (fast, slow) = (fast.expect("recorder"), slow.expect("recorder"));
    assert_eq!((fc, fs, fn_), (sc, ss, sn));
    let (fj, sj) = (fast.chrome_trace_json(), slow.chrome_trace_json());
    assert!(
        fast.total_events() > 300,
        "expected a nontrivial event stream, got {}",
        fast.total_events()
    );
    assert_eq!(fj, sj, "architectural event streams diverge across engines");
    // The counter families shared by both engines agree too.
    let c = (&fast.counters, &slow.counters);
    assert_eq!(c.0.syscalls, c.1.syscalls);
    assert_eq!(c.0.ctx_switches, c.1.ctx_switches);
    assert_eq!(c.0.tracer_stops, c.1.tracer_stops);
    assert_eq!(c.0.sigsys, c.1.sigsys);
}

/// With microarchitectural events on, the same engine traced twice
/// produces byte-identical Chrome-trace JSON (the acceptance criterion).
#[test]
fn trace_json_byte_identical_across_runs() {
    let cfg = ObsConfig {
        micro_events: true,
        ..ObsConfig::default()
    };
    let (a, ..) = run_smc_traced(false, Some(cfg.clone()), smc_guest(), false);
    let (b, ..) = run_smc_traced(false, Some(cfg), smc_guest(), false);
    let (a, b) = (a.expect("recorder"), b.expect("recorder"));
    assert!(a.counters.tlb_fills > 0, "micro counters exercised");
    // The cross-core patch surfaces through thread A's revalidation path
    // (the writer's own icache never held the target's decode).
    assert!(a.counters.icache_revalidations > 0, "SMC forced revalidations");
    assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    assert_eq!(a.summary(), b.summary());
}

proptest! {
    /// Enabling tracing never changes guest-visible state: clock, exit
    /// status, and syscall counts are identical with and without the
    /// recorder, for both engines and arbitrary SMC interleavings.
    #[test]
    fn tracing_is_invisible_to_the_guest(
        iters in 5u64..40,
        spin1 in 100u64..1200,
        spin2 in 100u64..1200,
        stepwise in any::<bool>(),
        micro_events in any::<bool>(),
    ) {
        let cfg = ObsConfig { micro_events, ring_capacity: 1024, ..ObsConfig::default() };
        let traced = run_smc_traced(stepwise, Some(cfg), smc_guest_param(iters, spin1, spin2), false);
        let plain = run_smc_traced(stepwise, None, smc_guest_param(iters, spin1, spin2), false);
        prop_assert!(traced.0.is_some() && plain.0.is_none());
        prop_assert_eq!((traced.1, traced.2, traced.3), (plain.1, plain.2, plain.3));
    }
}

proptest! {
    /// Enabling the kernel's coverage audit never changes guest-visible
    /// state *or* the recorded event stream: clock, exit status, syscall
    /// counts, and every per-cpu ring are identical with auditing on and
    /// off (the audit maintains counters, not events, unless
    /// `ObsConfig::audit_events` is opted into). The audited run must
    /// still have classified real work — the probe spec covers nothing,
    /// so every retired syscall lands in the bypass counter.
    #[test]
    fn auditing_is_invisible_to_the_guest(
        iters in 5u64..40,
        spin1 in 100u64..1200,
        spin2 in 100u64..1200,
        stepwise in any::<bool>(),
    ) {
        let cfg = ObsConfig { ring_capacity: 1024, ..ObsConfig::default() };
        let audited =
            run_smc_traced(stepwise, Some(cfg.clone()), smc_guest_param(iters, spin1, spin2), true);
        let plain =
            run_smc_traced(stepwise, Some(cfg), smc_guest_param(iters, spin1, spin2), false);
        prop_assert_eq!((audited.1, audited.2, audited.3), (plain.1, plain.2, plain.3));
        let (a, p) = (audited.0.expect("recorder"), plain.0.expect("recorder"));
        prop_assert_eq!(a.rings.len(), p.rings.len());
        for (cpu, ring) in &a.rings {
            prop_assert_eq!(
                &ring.events,
                &p.rings[cpu].events,
                "audit perturbed the cpu{:?} event stream",
                cpu
            );
        }
        prop_assert!(a.counters.audit_bypassed > 0, "audit classified nothing");
        prop_assert_eq!(p.counters.audit_bypassed, 0);
        prop_assert_eq!(p.counters.audit_interposed, 0);
    }
}

proptest! {
    /// Ring-overflow accounting is exact under tiny capacities: every
    /// emitted event is either retained or counted in the drop counter,
    /// and the retained prefix is deterministic — byte-identical across
    /// runs and a strict prefix of an uncapped run's stream.
    #[test]
    fn ring_overflow_accounting_is_exact(
        cap in 1usize..8,
        switches in 1u64..64,
        spans in 0u64..16,
    ) {
        let run = |cap: usize| {
            sim_obs::enable(ObsConfig {
                ring_capacity: cap,
                micro_events: false,
                ..ObsConfig::default()
            });
            let mut emitted = 0u64;
            for i in 0..switches {
                // Rotate over three simulated CPUs so several rings fill.
                sim_obs::context_switch(i, 1, (i % 3) + 1);
                emitted += 1;
            }
            for i in 0..spans {
                sim_obs::span_enter(1000 + 2 * i, "stage");
                sim_obs::span_exit(1001 + 2 * i);
                emitted += 2;
            }
            (sim_obs::disable().expect("recorder"), emitted)
        };
        let (a, emitted) = run(cap);
        prop_assert_eq!(a.total_events() + a.total_dropped(), emitted);
        let (b, _) = run(cap);
        let (full, _) = run(1 << 16);
        prop_assert_eq!(full.total_dropped(), 0);
        for (cpu, ring) in &a.rings {
            prop_assert_eq!(&ring.events, &b.rings[cpu].events, "prefix differs across runs");
            prop_assert_eq!(
                &ring.events[..],
                &full.rings[cpu].events[..ring.events.len()],
                "capped ring is not a prefix of the uncapped stream"
            );
        }
    }
}

/// SUD interposition is visible in the event stream: arming, selector
/// flips, and one SIGSYS round-trip per interposed syscall.
#[test]
fn sud_run_emits_sigsys_and_selector_flips() {
    let n = 50u64;
    let ip = SudInterposer::new();
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    k.vfs.write_file(MICRO_CFG, &n.to_le_bytes()).expect("cfg");
    sim_obs::enable(ObsConfig::default());
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    let exit = k.run(u64::MAX / 4);
    let rec = sim_obs::disable().expect("recorder");
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    assert!(rec.counters.sud_arms >= 1, "prctl arm recorded");
    assert!(
        rec.counters.sigsys >= n,
        "one SIGSYS per stress iteration, got {}",
        rec.counters.sigsys
    );
    assert!(
        rec.counters.sud_selector_flips >= 2,
        "selector must flip between ALLOW and BLOCK"
    );
    // Forwarded syscalls are attributed to the SUD handler's path.
    let sud_path = rec
        .paths
        .iter()
        .position(|p| p == "SUD")
        .expect("SUD path registered") as u16;
    assert!(rec.latency[&sud_path].count >= n);
}

/// K23 online runs attribute forwarded syscalls to the K23 path.
#[test]
fn k23_run_attributes_forwarded_syscalls() {
    let n = 50u64;
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    k.vfs.write_file(MICRO_CFG, &64u64.to_le_bytes()).expect("cfg");
    let session = OfflineSession::new(&mut k, MICRO_APP);
    let (_pid, exit) = session
        .run_once(&mut k, &[], &[], u64::MAX / 4)
        .expect("offline run");
    assert_eq!(exit, RunExit::AllExited);
    session.finish(&mut k);
    k.vfs.write_file(MICRO_CFG, &n.to_le_bytes()).expect("cfg");
    let ip = K23::new(Variant::Default);
    sim_obs::enable(ObsConfig::default());
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    let exit = k.run(u64::MAX / 4);
    let rec = sim_obs::disable().expect("recorder");
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    let k23_path = rec
        .paths
        .iter()
        .position(|p| p == "K23-default")
        .expect("K23 path registered") as u16;
    assert!(
        rec.latency[&k23_path].count >= n,
        "stress syscalls forwarded through libk23, got {}",
        rec.latency[&k23_path].count
    );
    assert_eq!(rec.counters.sigsys, 0, "K23 online leaves no SIGSYS traps");
    let s = rec.summary();
    assert!(s.contains("K23-default"), "summary attributes the K23 path");
}

/// Per-syscall overhead ordering across mechanisms, measured by the
/// differencing microbenchmark (paper Table 4/5 trend): ptrace costs the
/// most, then SUD signal delivery; rewriting mechanisms (zpoline,
/// lazypoline, K23) are far cheaper. Within the rewriters the paper's
/// Table 5 puts lazypoline above K23-default (extra SUD-assisted
/// discovery), and zpoline-default below it (no discovery machinery at
/// all) — asserted exactly that way rather than as a single chain.
#[test]
fn per_interposer_overhead_ordering_matches_table4_trend() {
    let n = 400;
    let ptrace = per_iteration_cycles_with(&PtraceInterposer::new(), n);
    let sud = per_iteration_cycles(Config::Sud, n);
    let zpoline = per_iteration_cycles(Config::ZpolineDefault, n);
    let lazypoline = per_iteration_cycles(Config::Lazypoline, n);
    let k23 = per_iteration_cycles(Config::K23Default, n);
    assert!(
        ptrace > sud,
        "ptrace ({ptrace:.0}) must exceed SUD ({sud:.0})"
    );
    for (label, rewriter) in [
        ("zpoline", zpoline),
        ("lazypoline", lazypoline),
        ("K23", k23),
    ] {
        assert!(
            sud > rewriter,
            "SUD ({sud:.0}) must exceed {label} ({rewriter:.0})"
        );
    }
    assert!(
        lazypoline > k23,
        "lazypoline ({lazypoline:.0}) above K23-default ({k23:.0}) per Table 5"
    );
    assert!(
        zpoline < k23,
        "zpoline-default ({zpoline:.0}) below K23-default ({k23:.0}) per Table 5"
    );
}
