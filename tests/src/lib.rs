//! Shared fixtures for the integration tests in `tests/tests/`.
//!
//! The multi-core self-modifying-code (SMC) guest lives here so both the
//! engine-determinism suite and the observability suite can drive the
//! same worst-case workload.

use std::collections::BTreeMap;

use sim_isa::{Asm, Reg};
use sim_kernel::{nr, ExecLoader, ExecOpts, LoadedImage, Vfs};
use sim_mem::AddressSpace;

/// Loader stub mapping raw code **RWX** so the guest can patch itself.
pub struct RwxLoader(pub Vec<u8>);

impl ExecLoader for RwxLoader {
    fn load(
        &self,
        _vfs: &mut Vfs,
        _path: &str,
        _argv: &[String],
        _env: &[String],
        _opts: &ExecOpts,
    ) -> Result<LoadedImage, i64> {
        let mut space = AddressSpace::new();
        space
            .map(0x1000, 0x10000, sim_mem::Perms::RWX, "/bin/smc")
            .map_err(|_| -nr::ENOMEM)?;
        space.write_raw(0x1000, &self.0).map_err(|_| -nr::ENOMEM)?;
        space
            .map(0x8_0000, 0x10000, sim_mem::Perms::RW, "[stack]")
            .map_err(|_| -nr::ENOMEM)?;
        Ok(LoadedImage {
            space,
            entry: 0x1000,
            rsp: 0x9_0000 - 64,
            hostcall_sites: Vec::new(),
            symbols: BTreeMap::new(),
            lib_bases: BTreeMap::new(),
            vdso_base: 0,
        })
    }
}

/// Two-thread self-modifying guest, parameterized for property tests.
///
/// Thread A calls `target` (which returns a constant) `iters` times,
/// accumulating the returned values, and enters the kernel once per
/// iteration — the serialization point at which another core's code patch
/// becomes architecturally visible. Thread B spins `spin1` iterations,
/// rewrites the constant's immediate byte underfoot (store → own-core
/// exact-overlap invalidation, cross-core staleness until A serializes),
/// spins `spin2` more, and rewrites it once more. The final accumulator
/// value — and therefore the exit status — depends on exactly which
/// iterations observe which patch.
///
/// Returns `(code, imm_addr)` where `imm_addr` is the guest address of the
/// patchable immediate byte (MovImm encodes as `48 b8 imm64`, so +2).
pub fn smc_guest_param(iters: u64, spin1: u64, spin2: u64) -> (Vec<u8>, u64) {
    let mut a = Asm::new();
    // Spawn thread B: fresh stack at 0x8_8000 with its entry seeded on it.
    a.mov_imm(Reg::Rsi, 0x8_8000);
    a.lea_label(Reg::Rcx, "thread_b");
    a.store(Reg::Rsi, 0, Reg::Rcx);
    a.mov_imm(Reg::Rax, nr::SYS_CLONE);
    a.syscall();
    a.test_reg(Reg::Rax, Reg::Rax);
    a.jz("thread_b");
    // Thread A: accumulate `iters` calls through the patchable target.
    a.mov_imm(Reg::R14, 0);
    a.mov_imm(Reg::R13, iters);
    a.label("iter");
    a.call("target");
    a.add_reg(Reg::R14, Reg::Rax);
    a.mov_imm(Reg::Rax, nr::SYS_GETPID);
    a.syscall();
    a.sub_imm(Reg::R13, 1);
    a.jnz("iter");
    a.mov_reg(Reg::Rdi, Reg::R14);
    a.and_imm(Reg::Rdi, 0x7f);
    a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
    a.syscall();
    // The patch target: returns a constant thread B rewrites underfoot.
    a.label("target");
    a.mov_imm(Reg::Rax, 1);
    a.ret();
    // Thread B: spin, patch the immediate to 2, spin, patch to 3, park.
    a.label("thread_b");
    a.mov_imm(Reg::Rcx, spin1);
    a.label("spin1");
    a.sub_imm(Reg::Rcx, 1);
    a.jnz("spin1");
    a.lea_label(Reg::R11, "target");
    a.mov_imm(Reg::Rdx, 2);
    a.store_byte(Reg::R11, 2, Reg::Rdx);
    a.mov_imm(Reg::Rcx, spin2);
    a.label("spin2");
    a.sub_imm(Reg::Rcx, 1);
    a.jnz("spin2");
    a.mov_imm(Reg::Rdx, 3);
    a.store_byte(Reg::R11, 2, Reg::Rdx);
    a.label("park");
    a.jmp("park");
    let prog = a.finish_program();
    let imm_addr = 0x1000 + prog.sym("target") + 2;
    (prog.bytes, imm_addr)
}

/// The canonical SMC guest used by the determinism regression.
pub fn smc_guest() -> (Vec<u8>, u64) {
    smc_guest_param(300, 2_000, 4_000)
}
