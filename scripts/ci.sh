#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint with warnings denied.
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
