#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint with warnings denied.
# Run from anywhere; the script cd's to the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> simtrace smoke (coreutil under K23, self-checked trace)"
cargo run --release -q -p bench --bin simtrace -- \
    --interposer k23 --selfcheck \
    --trace-out target/SIMTRACE_smoke.json \
    --summary-out target/SIMTRACE_smoke.txt

echo "==> simfault smoke (fault matrix, byte-determinism check)"
cargo run --release -q -p bench --bin simfault -- --smoke > target/SIMFAULT_smoke_a.txt
cargo run --release -q -p bench --bin simfault -- --smoke > target/SIMFAULT_smoke_b.txt
cmp target/SIMFAULT_smoke_a.txt target/SIMFAULT_smoke_b.txt

echo "==> simstack smoke (composed-stack matrix + propagation, byte-determinism check)"
cargo run --release -q -p bench --bin simstack -- --smoke > target/SIMSTACK_smoke_a.txt
cargo run --release -q -p bench --bin simstack -- --smoke > target/SIMSTACK_smoke_b.txt
cmp target/SIMSTACK_smoke_a.txt target/SIMSTACK_smoke_b.txt

echo "==> simaudit smoke (coverage matrix + JSON export, byte-determinism check)"
cargo run --release -q -p bench --bin simaudit -- --smoke --json target/SIMAUDIT_smoke_a.json > target/SIMAUDIT_smoke_a.txt
cargo run --release -q -p bench --bin simaudit -- --smoke --json target/SIMAUDIT_smoke_b.json > target/SIMAUDIT_smoke_b.txt
cmp target/SIMAUDIT_smoke_a.txt target/SIMAUDIT_smoke_b.txt
cmp target/SIMAUDIT_smoke_a.json target/SIMAUDIT_smoke_b.json

echo "==> simscale smoke (connection-scale matrix, byte-determinism across thread counts)"
cargo run --release -q -p bench --bin simscale -- --smoke --threads 1 --json target/SIMSCALE_smoke_a.json > target/SIMSCALE_smoke_a.txt
cargo run --release -q -p bench --bin simscale -- --smoke --threads 4 --json target/SIMSCALE_smoke_b.json > target/SIMSCALE_smoke_b.txt
cmp target/SIMSCALE_smoke_a.txt target/SIMSCALE_smoke_b.txt
cmp target/SIMSCALE_smoke_a.json target/SIMSCALE_smoke_b.json

echo "==> simprof smoke (profiler determinism across runs and engines)"
cargo run --release -q -p bench --bin simprof -- --smoke

echo "==> simrecord smoke (record on trace, replay on stepwise, bisection, navigation)"
cargo run --release -q -p bench --bin simrecord -- --smoke

echo "==> bench gate (profiler counts vs BENCH_simprof.json, engine throughput + determinism vs BENCH_simperf.json)"
scripts/bench_gate.sh

echo "==> ci.sh: all green"
