#!/usr/bin/env bash
# Profiler bench regression gate: re-measure every (workload, interposer)
# row with simprof and compare instruction/sample counts against the
# committed baseline BENCH_simprof.json. Fails (non-zero exit) when any
# row drifts beyond the tolerance band (default 10%; override with
# SIMPROF_TOL or extra flags, e.g. `scripts/bench_gate.sh --tol 0.05`).
#
# Refresh the baseline after an intentional change with:
#   cargo run --release -q -p bench --bin simprof
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -q -p bench --bin simprof -- --gate BENCH_simprof.json "$@"
