#!/usr/bin/env bash
# Bench regression gates against the committed baselines.
#
# 1. Profiler gate: re-measure every (workload, interposer) row with
#    simprof and compare instruction/sample counts against
#    BENCH_simprof.json. Fails (non-zero exit) when any row drifts beyond
#    the tolerance band (default 10%; override with SIMPROF_TOL or extra
#    flags, e.g. `scripts/bench_gate.sh --tol 0.05` — flags are passed to
#    the simprof gate only).
# 2. Engine-throughput gate: re-run simperf and check against
#    BENCH_simperf.json that (a) the three engines' instruction streams
#    are still byte-identical (determinism), (b) the snapshot run drops
#    no obs events, and (c) block/trace inst/s have not fallen below
#    baseline × (1 − tol) (SIMPERF_TOL, default 0.5 — wall-clock
#    throughput on shared CI is noisy; only slowdowns fail).
#
# 3. Coverage gate: re-run the simaudit sweep and require every
#    (mechanism, workload) cell's coverage to stay at or above the
#    committed MATRIX_simaudit.txt floor.
#
# 4. Scale gate: check the committed BENCH_scale.json still satisfies
#    the scaling criterion (epoll server >= 5x the polling variant at
#    the top connection count under K23) and re-measure the epoll/K23
#    floor cell against the committed throughput.
#
# Refresh the baselines after an intentional change with:
#   cargo run --release -q -p bench --bin simprof
#   cargo run --release -q -p bench --bin simperf -- --json BENCH_simperf.json
#   cargo run --release -q -p bench --bin simaudit -- --out MATRIX_simaudit.txt
#   cargo run --release -p bench --bin simscale -- --json BENCH_scale.json
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -q -p bench --bin simprof -- --gate BENCH_simprof.json "$@"
cargo run --release -q -p bench --bin simperf -- --gate BENCH_simperf.json
cargo run --release -q -p bench --bin simaudit -- --gate MATRIX_simaudit.txt
cargo run --release -q -p bench --bin simscale -- --gate BENCH_scale.json
