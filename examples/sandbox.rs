//! sandbox: a security-flavored use of K23's hook points — the paper's
//! motivating sandboxing scenario (§1, §7). We run an "application" that
//! tries to disable interposition and exfiltrate via execve with a cleaned
//! environment; K23's defenses hold the line.
//!
//! Run with: `cargo run -p k23-examples --example sandbox`

use interpose::Interposer;
use k23::{Variant, K23};
use sim_isa::Reg;
use sim_kernel::nr;
use sim_loader::{ImageBuilder, LIBC_PATH};

fn main() {
    let mut kernel = sim_loader::boot_kernel();
    apps::install_world(&mut kernel.vfs);

    // A hostile guest: first tries prctl(PR_SET_SYSCALL_USER_DISPATCH, OFF),
    // the Listing 2 bypass.
    let mut evil = ImageBuilder::new("/usr/bin/evil");
    evil.entry("main");
    evil.needs(LIBC_PATH);
    evil.asm.label("main");
    evil.asm.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
    evil.asm.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_OFF);
    evil.asm.mov_imm(Reg::Rdx, 0);
    evil.asm.mov_imm(Reg::R10, 0);
    evil.asm.mov_imm(Reg::R8, 0);
    evil.asm.mov_imm(Reg::Rax, nr::SYS_PRCTL);
    evil.asm.syscall();
    // If we get here the sandbox failed; do "evil" work.
    evil.asm.mov_imm(Reg::Rax, 0);
    evil.asm.ret();
    evil.finish().install(&mut kernel.vfs);

    let k23 = K23::new(Variant::UltraPlus);
    k23.install(&mut kernel);
    let pid = k23
        .spawn(&mut kernel, "/usr/bin/evil", &[], &[])
        .expect("spawn");
    kernel.run(100_000_000_000);
    let p = kernel.process(pid).expect("proc");
    println!("hostile prctl attempt → process exited {:?}", p.exit_status);
    assert_eq!(p.exit_status, Some(134), "sandbox must abort the bypass");
    println!(
        "blocked prctl attempts: {} — P1b defended.",
        k23.stats().prctl_blocks
    );

    // A second guest execs a child with a scrubbed environment (Listing 1).
    let mut laundry = ImageBuilder::new("/usr/bin/laundry");
    laundry.entry("main");
    laundry.needs(LIBC_PATH);
    laundry.asm.label("main");
    laundry.asm.lea_label(Reg::Rdi, "victim");
    laundry.asm.mov_imm(Reg::Rsi, 0);
    laundry.asm.mov_imm(Reg::Rdx, 0); // envp = NULL
    laundry.asm.mov_imm(Reg::Rax, nr::SYS_EXECVE);
    laundry.asm.syscall();
    laundry.asm.mov_imm(Reg::Rax, 1);
    laundry.asm.ret();
    laundry.data_object("victim", b"/usr/bin/pwd-sim\0");
    laundry.finish().install(&mut kernel.vfs);

    let k23 = K23::new(Variant::UltraPlus);
    k23.install(&mut kernel);
    let pid = k23
        .spawn(&mut kernel, "/usr/bin/laundry", &[], &[])
        .expect("spawn");
    kernel.run(100_000_000_000);
    let p = kernel.process(pid).expect("proc");
    println!(
        "\nenv-scrubbing exec → new image {:?} exited {:?}",
        p.exe, p.exit_status
    );
    println!(
        "LD_PRELOAD forced back by the guards: execve re-attachments = {}",
        k23.stats().execve_reattach
    );
    assert!(p.env.iter().any(|e| e.starts_with("LD_PRELOAD=")));
    println!("P1a defended: the sandbox followed the exec.");
}
