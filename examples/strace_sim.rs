//! strace-sim: use the ptrace interface to trace every syscall of a guest
//! application, printing an strace-style log — the classic exhaustive (and
//! slow) interposition use case (paper §2.1).
//!
//! Run with: `cargo run -p k23-examples --example strace_sim`

use sim_kernel::{nr, Stop, TraceOpts, Tracer, TracerAction};
use std::cell::RefCell;
use std::rc::Rc;

/// A tracer that prints syscall enters/exits like strace.
#[derive(Default)]
struct Strace {
    depth: u64,
}

impl Tracer for Strace {
    fn on_stop(
        &mut self,
        _k: &mut sim_kernel::Kernel,
        pid: sim_kernel::Pid,
        _tid: u64,
        stop: &Stop,
    ) -> TracerAction {
        match stop {
            Stop::SyscallEnter { nr: n, args, site } => {
                self.depth += 1;
                println!(
                    "[pid {pid}] {}({:#x}, {:#x}, {:#x}) @ {site:#x}",
                    nr::syscall_name(*n),
                    args[0],
                    args[1],
                    args[2]
                );
            }
            Stop::SyscallExit { ret, .. } => {
                println!("[pid {pid}]   = {:#x}", *ret);
            }
            Stop::Exec { path } => println!("[pid {pid}] --- exec {path} ---"),
            Stop::Exit { status } => println!("[pid {pid}] +++ exited with {status} +++"),
            _ => {}
        }
        TracerAction::Continue
    }
}

fn main() {
    let mut kernel = sim_loader::boot_kernel();
    apps::install_world(&mut kernel.vfs);
    let tracer = Rc::new(RefCell::new(Strace::default()));
    let pid = kernel
        .spawn(
            "/usr/bin/cat-sim",
            &["cat".into()],
            &[],
            Some((
                tracer.clone(),
                TraceOpts {
                    trace_syscalls: true,
                    trace_exec: true,
                    trace_fork: true,
                    disable_vdso: true,
                },
            )),
        )
        .expect("spawn");
    kernel.run(100_000_000_000);
    let p = kernel.process(pid).expect("proc");
    println!(
        "\ntraced {} syscalls; cat output was: {:?}",
        tracer.borrow().depth,
        p.output_string()
    );
}
