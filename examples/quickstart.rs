//! Quickstart: boot the simulated machine, run an application natively,
//! then run it under K23 (offline phase + online phase) and show that every
//! system call was interposed.
//!
//! Run with: `cargo run -p k23-examples --example quickstart`

use interpose::Interposer;
use k23::{OfflineSession, Variant, K23};

fn main() {
    // A machine with the standard libraries and the demo applications.
    let mut kernel = sim_loader::boot_kernel();
    apps::install_world(&mut kernel.vfs);

    // 1. Native run of ls-sim.
    let pid = kernel
        .spawn("/usr/bin/ls-sim", &["ls".into()], &[], None)
        .expect("spawn ls-sim");
    kernel.run(50_000_000_000);
    let p = kernel.process(pid).expect("process");
    println!("native ls-sim exited {:?}; output:", p.exit_status);
    println!("{}", p.output_string());
    println!(
        "startup syscalls an LD_PRELOAD interposer would miss: {}",
        p.stats.syscalls_before_interposer
    );

    // 2. K23 offline phase: log the legitimate syscall sites.
    let mut kernel = sim_loader::boot_kernel();
    apps::install_world(&mut kernel.vfs);
    let session = OfflineSession::new(&mut kernel, "/usr/bin/ls-sim");
    session
        .run_once(&mut kernel, &["ls".into()], &[], 50_000_000_000)
        .expect("offline run");
    let log = session.finish(&mut kernel);
    println!("\noffline phase logged {} unique sites:", log.len());
    print!("{}", log.render());

    // 3. K23 online phase on the same machine (the log is already sealed).
    let k23 = K23::new(Variant::Ultra);
    k23.install(&mut kernel);
    let pid = k23
        .spawn(&mut kernel, "/usr/bin/ls-sim", &["ls".into()], &[])
        .expect("spawn under K23");
    kernel.run(100_000_000_000);
    let p = kernel.process(pid).expect("process");
    println!("\nK23 run exited {:?}", p.exit_status);
    println!(
        "sites rewritten in the single rewriting step: {}",
        k23.stats().rewritten.len()
    );
    println!(
        "syscalls interposed: {} of {} (startup covered by the ptracer: {})",
        k23.interposed_count(&kernel, pid),
        p.stats.syscalls,
        k23.startup_syscalls()
    );
    assert_eq!(k23.interposed_count(&kernel, pid), p.stats.syscalls);
    println!("\nevery system call counts — and every one was interposed.");
}
