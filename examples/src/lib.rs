//! Library stub: the interesting entry points are the examples.
