//! pitfall_tour: run every Proof-of-Concept against zpoline, lazypoline,
//! and K23, and print the resulting Table 3 matrix.
//!
//! Run with: `cargo run -p k23-examples --example pitfall_tour --release`

fn main() {
    println!("Evaluating all 9 pitfalls under all 3 interposers");
    println!("(each cell runs PoC programs on a fresh simulated machine)…\n");
    let matrix = pitfalls::full_matrix();
    print!("{}", pitfalls::render_matrix(&matrix));
    println!("\n✓ = handled or not relevant; ✗ = bypass/blind spot/corruption/crash");
    println!("Compare with the paper's Table 3: only K23 clears every row.");
}
